// Thread-safe metrics registry: named counters, gauges and fixed-bucket
// histograms.
//
// The registry is process-global and append-only: instruments are
// created on first use and live for the life of the process, so code may
// cache `Counter&` / `Histogram&` references (the macros below do this
// with a function-local static).  All mutation is lock-free atomics;
// registration takes a mutex once per instrument.
//
// Everything is gated on one relaxed atomic flag: with metrics disabled
// (the default) the macros cost a single load and no instrument is ever
// registered, so library users and tests that never pass --metrics pay
// nothing.
//
// Naming scheme (DESIGN.md §12): dotted lowercase
// `<subsystem>.<object>.<measure>[_<unit>]`, e.g. `cache.l1.hits`,
// `pool.busy_ns`, `engine.access_latency_ns`.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace mlsc::obs {

/// True when metric recording is on (--metrics was given).
bool metrics_enabled();

/// Turns metric recording on or off.  Enabling also installs the thread
/// pool observer so pool busy/idle counters accumulate.
void set_metrics_enabled(bool enabled);

/// A monotonically increasing count.
class Counter {
 public:
  void add(std::uint64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void inc() { add(1); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// A last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// A fixed-bucket histogram.  Bucket i counts observations <= bounds[i];
/// one implicit overflow bucket counts the rest.  Bounds are fixed at
/// registration (first use) and must be strictly increasing.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Count in bucket i (i == bounds().size() is the overflow bucket).
  std::uint64_t bucket_count(std::size_t i) const;
  std::uint64_t total_count() const {
    return total_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Estimates the p-th percentile (p in [0, 100]) from the bucket
  /// counts, linearly interpolated within the containing bucket
  /// (support/stats quantile_rank/lerp — the same rank definition as
  /// percentile_of).  The first bucket's lower edge is taken as 0 (the
  /// histograms here record non-negative latencies); ranks landing in
  /// the overflow bucket clamp to the last finite bound, which is the
  /// best the fixed buckets can say.  NaN when the histogram is empty.
  double quantile(double p) const;
  void reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
  std::atomic<std::uint64_t> total_{0};
  std::atomic<double> sum_{0.0};
};

/// The process-global instrument registry.
class Registry {
 public:
  static Registry& global();

  /// Finds or creates the named instrument.  References stay valid for
  /// the life of the process (instruments are never destroyed; reset()
  /// only zeroes them).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `bounds` is consulted only when the histogram does not exist yet.
  Histogram& histogram(std::string_view name, std::vector<double> bounds);

  /// Zeroes every instrument (tests; instruments stay registered).
  void reset();

  /// One JSON object {"counters": {...}, "gauges": {...},
  /// "histograms": {...}} using the shared Table::print_json emitter
  /// (names sorted, non-finite doubles rendered as null).  Histograms
  /// carry interpolated p50/p90/p99 under "quantiles" (null when empty).
  void write_json(std::ostream& out) const;

  /// Prometheus text exposition format (version 0.0.4): counters and
  /// gauges as single samples, histograms as cumulative
  /// `_bucket{le="..."}` series plus `_sum` and `_count`.  Dotted names
  /// are sanitized with sanitize_metric_name.
  void dump_prometheus(std::ostream& out) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Writes Registry::global()'s JSON dump to `path`; returns false (and
/// logs to stderr) when the file cannot be written.
bool write_metrics_file(const std::string& path);

/// Maps a dotted metric name onto the Prometheus name charset
/// [a-zA-Z_:][a-zA-Z0-9_:]*: '.' and every other invalid character
/// become '_', and a leading digit gets a '_' prefix.
std::string sanitize_metric_name(std::string_view name);

}  // namespace mlsc::obs

// Zero-overhead-when-disabled recording macros: one relaxed atomic load
// when metrics are off; a cached registry lookup plus one atomic RMW when
// on.  Names must be string literals (or at least stable for the call
// site — the instrument is resolved once per site).
#define MLSC_COUNTER_ADD(name, delta)                              \
  do {                                                             \
    if (::mlsc::obs::metrics_enabled()) {                          \
      static ::mlsc::obs::Counter& mlsc_obs_counter_ =             \
          ::mlsc::obs::Registry::global().counter(name);           \
      mlsc_obs_counter_.add(delta);                                \
    }                                                              \
  } while (false)

#define MLSC_COUNTER_INC(name) MLSC_COUNTER_ADD(name, 1)

#define MLSC_GAUGE_SET(name, value)                                \
  do {                                                             \
    if (::mlsc::obs::metrics_enabled()) {                          \
      static ::mlsc::obs::Gauge& mlsc_obs_gauge_ =                 \
          ::mlsc::obs::Registry::global().gauge(name);             \
      mlsc_obs_gauge_.set(static_cast<double>(value));             \
    }                                                              \
  } while (false)

/// Trailing arguments are the bucket upper bounds, used on first use.
#define MLSC_HISTOGRAM_OBSERVE(name, value, ...)                   \
  do {                                                             \
    if (::mlsc::obs::metrics_enabled()) {                          \
      static ::mlsc::obs::Histogram& mlsc_obs_histogram_ =         \
          ::mlsc::obs::Registry::global().histogram(name,          \
                                                    {__VA_ARGS__}); \
      mlsc_obs_histogram_.observe(static_cast<double>(value));     \
    }                                                              \
  } while (false)
