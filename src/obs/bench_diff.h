// Noise-aware comparison of two run records (DESIGN.md §13) — the
// engine behind `tools/mlsc_bench_diff`.
//
// Both documents are flattened to named numeric metrics (table cells,
// phase wall-clocks, registry counters/gauges/histogram quantiles) and
// compared metric-by-metric under per-class relative thresholds:
//
//   - *Deterministic* metrics (miss rates, counts, simulated results)
//     must match within a tight tolerance in either direction — the
//     simulator is deterministic, so any drift means behaviour changed
//     and the baseline must be regenerated deliberately.
//   - *Timing* metrics (names carrying _ms/_ns/time/latency/...) are
//     real wall-clock measurements: only increases count, the threshold
//     is loose, and it widens by a repetition-aware noise margin of
//     (1 + 1/sqrt(repetitions)) — single-shot runs get twice the slack
//     of a well-repeated one.
//
// Breaches of the threshold are soft regressions; breaches of
// hard_factor x threshold are hard regressions (CI soft-fails on the
// former, hard-fails on the latter).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "support/json.h"
#include "support/table.h"

namespace mlsc::obs {

enum class MetricNoise { kDeterministic, kTiming };

/// One comparable number extracted from a run record.
struct FlatMetric {
  std::string name;
  double value = 0.0;
  MetricNoise noise = MetricNoise::kDeterministic;
};

/// True when the metric name denotes a wall-clock measurement.
bool is_timing_metric(std::string_view name);

/// True when the metric is guarded: any deterministic breach is an
/// immediate hard regression, with no soft band.  Guarded metrics are
/// algorithmic guarantees (e.g. the candidate-pair reduction_ratio of
/// the similarity graph) — deterministic by construction, so any drift
/// means the pruning behaviour changed.
bool is_guarded_metric(std::string_view name);

/// Flattens a parsed run record (or legacy bench --json document) into
/// its comparable metrics:
///   tables.<title>[<row>].<column>   numeric table cells
///   phases.<name>.wall_ms            per-phase wall clock (timing)
///   counters.<name> / gauges.<name>  registry instruments
///   histograms.<name>.{p50,p90,p99,count,mean}
/// Duplicate first-column row labels are disambiguated with the second
/// column ("1024/2") and, failing that, a "#k" suffix.
std::vector<FlatMetric> flatten_run_record(const JsonValue& record);

/// Repetition count stamped in the record's metadata (1 when absent).
std::size_t record_repetitions(const JsonValue& record);

/// One-line build identity from the record's metadata: git SHA, SIMD
/// dispatch level and build type (each "?" when the record predates the
/// stamp).  The diff tool prints this for both sides so baselines
/// recorded on different builds/hardware are immediately visible.
std::string record_build_id(const JsonValue& record);

/// The metadata string at `key`, or "" when absent/not a string.
std::string record_metadata_string(const JsonValue& record,
                                   const std::string& key);

struct DiffOptions {
  double det_threshold = 1e-3;   // relative, deterministic metrics
  double time_threshold = 0.30;  // relative, timing metrics, pre-margin
  double hard_factor = 2.0;      // hard regression at factor x threshold
};

enum class Verdict {
  kOk,              // within threshold
  kImproved,        // timing metric shrank beyond the threshold
  kSoftRegression,  // beyond threshold
  kHardRegression,  // beyond hard_factor x threshold
  kMissing,         // in baseline, absent from current
  kNew,             // in current, absent from baseline
  kSkipped,         // non-finite value or unnormalizable zero baseline
};

struct MetricDelta {
  std::string name;
  double baseline = 0.0;
  double current = 0.0;
  double rel_delta = 0.0;   // (current - baseline) / |baseline|
  double threshold = 0.0;   // effective (noise-adjusted) threshold
  MetricNoise noise = MetricNoise::kDeterministic;
  Verdict verdict = Verdict::kOk;
};

struct DiffResult {
  std::vector<MetricDelta> deltas;  // baseline order, then new metrics
  std::size_t compared = 0;
  std::size_t soft_regressions = 0;
  std::size_t hard_regressions = 0;
  std::size_t improvements = 0;
  std::size_t missing = 0;

  /// 0 clean, 1 soft regressions only, 2 any hard regression.
  int exit_code() const;
};

DiffResult diff_run_records(const JsonValue& baseline,
                            const JsonValue& current,
                            const DiffOptions& options = {});

/// A floor assertion on one metric of the *current* record (no baseline
/// involved): `metric` must be >= `min`.  CI uses these for environment-
/// dependent guarantees a committed baseline cannot express — e.g.
/// "map_speedup at 4 threads >= 1.3" evaluated on the runner's own
/// record (this container may be single-core while CI is not).
struct MinAssertion {
  std::string metric;
  double min = 0.0;
};

/// Parses "metric:value" (value = trailing float after the last ':').
bool parse_min_assertion(std::string_view spec, MinAssertion* out);

/// Evaluates assertions against a record's flattened metrics.  Returns
/// one human-readable failure line per unmet assertion; a missing or
/// non-finite metric is a failure too.
std::vector<std::string> check_min_assertions(
    const JsonValue& record, const std::vector<MinAssertion>& assertions);

/// The complement of MinAssertion: a ceiling on one metric of the
/// current record — `metric` must be <= `max`.  CI uses these to cap
/// quantities that must not creep up, e.g. the sar workload's
/// insight.l2.interference_miss_pct under the inter-processor mapping.
struct MaxAssertion {
  std::string metric;
  double max = 0.0;
};

bool parse_max_assertion(std::string_view spec, MaxAssertion* out);

std::vector<std::string> check_max_assertions(
    const JsonValue& record, const std::vector<MaxAssertion>& assertions);

/// The delta table: every interesting row (regressions, improvements,
/// missing/new), plus all compared rows when `all` is set.  With
/// `color`, verdict cells wear ANSI SGR colors (Table::print is
/// escape-aware when aligning).
Table diff_table(const DiffResult& result, bool color, bool all);

}  // namespace mlsc::obs
