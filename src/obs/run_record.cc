#include "obs/run_record.h"

#include <fstream>
#include <iostream>
#include <ostream>

#include "obs/metrics.h"
#include "support/string_util.h"

namespace mlsc::obs {

void RunRecord::write_json(std::ostream& out) const {
  out << "{\"schema\": ";
  write_json_string(out, kRunRecordSchema);
  out << ",\n \"binary\": ";
  write_json_string(out, binary);
  out << ",\n \"metadata\": {\"machine\": ";
  write_json_string(out, machine);
  out << ", \"apps\": [";
  for (std::size_t i = 0; i < apps.size(); ++i) {
    if (i != 0) out << ", ";
    write_json_string(out, apps[i]);
  }
  out << "], \"hardware_threads\": " << hardware_threads
      << ", \"build_type\": ";
  write_json_string(out, build_type);
  out << ", \"repetitions\": " << repetitions;
  if (!git_sha.empty()) {
    out << ", \"git_sha\": ";
    write_json_string(out, git_sha);
  }
  if (!simd_level.empty()) {
    out << ", \"simd_level\": ";
    write_json_string(out, simd_level);
  }
  if (has_seed) out << ", \"seed\": " << seed;
  out << "},\n \"phases\": [";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    if (i != 0) out << ",";
    out << "\n  {\"name\": ";
    write_json_string(out, phases[i].first);
    out << ", \"wall_ms\": " << json_number(phases[i].second) << "}";
  }
  out << (phases.empty() ? "]" : "\n ]") << ",\n \"tables\": [";
  for (std::size_t i = 0; i < tables.size(); ++i) {
    if (i != 0) out << ",";
    out << "\n  ";
    tables[i].second.print_json(out, tables[i].first);
  }
  out << (tables.empty() ? "]" : "\n ]");
  if (!insight.empty()) {
    out << ",\n \"insight\": ";
    write_insight_json(out, insight);
  }
  if (include_metrics) {
    out << ",\n \"metrics\": ";
    Registry::global().write_json(out);
  }
  out << "}\n";
}

bool RunRecord::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "[obs] cannot open " << path << " for writing\n";
    return false;
  }
  write_json(out);
  return out.good();
}

}  // namespace mlsc::obs
