// RAII observability session for tool main()s.
//
// Every mlsc binary that honors the shared --trace/--metrics flags
// (support/argparse CommonToolOptions) needs the same bracketing: start
// the trace session and enable metric recording up front, then flush
// both on every exit path.  ObsScope is that bracket — construct it once
// after argument parsing and the trace file and metrics dump are written
// no matter how main() unwinds.
#pragma once

#include <string>

namespace mlsc::obs {

class ObsScope {
 public:
  /// Starts a trace session when `trace_path` is non-empty and enables
  /// metric recording when `metrics_path` is non-empty (or when
  /// `force_metrics` asks for live metrics without a dump file, e.g. a
  /// Prometheus polling endpoint).
  explicit ObsScope(std::string trace_path, std::string metrics_path,
                    bool force_metrics = false);

  /// Stops the trace and writes the metrics dump (when requested).
  ~ObsScope();

  ObsScope(const ObsScope&) = delete;
  ObsScope& operator=(const ObsScope&) = delete;

 private:
  std::string trace_path_;
  std::string metrics_path_;
};

}  // namespace mlsc::obs
