#include "obs/report_html.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <sstream>
#include <vector>

#include "obs/trace.h"
#include "support/string_util.h"

namespace mlsc::obs {

namespace {

// Categorical palette (validated for adjacent-pair CVD separation and
// normal-vision distance in both modes; the light-mode contrast warning
// on slots 3/4/5 is relieved by the data-table view under each chart).
// Slot order is the stall-category stacking order.
struct Category {
  const char* name;
  const char* css;  // CSS custom property carrying the slot color
};
constexpr Category kStallCategories[] = {
    {"compute", "--series-1"},  {"l1 hit", "--series-2"},
    {"l2 hit", "--series-3"},   {"l3 hit", "--series-4"},
    {"peer hit", "--series-5"}, {"disk", "--series-6"},
    {"sync wait", "--series-7"},
};
constexpr std::size_t kNumCategories =
    sizeof(kStallCategories) / sizeof(kStallCategories[0]);

std::string html_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string pct(double fraction) {
  return format_double(std::max(0.0, std::min(1.0, fraction)) * 100.0, 2);
}

const char* kStyle = R"css(
:root {
  color-scheme: light;
  --surface-1: #fcfcfb; --surface-2: #f0efec;
  --text-primary: #0b0b0b; --text-secondary: #52514e;
  --grid: #dddcd8;
  --series-1: #2a78d6; --series-2: #eb6834; --series-3: #1baf7a;
  --series-4: #eda100; --series-5: #e87ba4; --series-6: #008300;
  --series-7: #4a3aa7;
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --surface-1: #1a1a19; --surface-2: #383835;
    --text-primary: #ffffff; --text-secondary: #c3c2b7;
    --grid: #44433f;
    --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70;
    --series-4: #c98500; --series-5: #d55181; --series-6: #008300;
    --series-7: #9085e9;
  }
}
body {
  background: var(--surface-1); color: var(--text-primary);
  font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto;
  max-width: 64rem; padding: 0 1rem;
}
h1 { font-size: 1.4rem; }
h2 { font-size: 1.1rem; margin-top: 2rem; border-bottom: 1px solid var(--grid); padding-bottom: .3rem; }
p.subtitle { color: var(--text-secondary); margin-top: -.5rem; }
table { border-collapse: collapse; margin: .8rem 0; }
th, td { border: 1px solid var(--grid); padding: .25rem .6rem; text-align: right; }
th:first-child, td:first-child { text-align: left; }
th { background: var(--surface-2); }
.bar-row { display: flex; align-items: center; gap: .6rem; margin: 2px 0; }
.bar-label { flex: 0 0 14rem; text-align: right; color: var(--text-secondary);
  overflow: hidden; text-overflow: ellipsis; white-space: nowrap; }
.bar-track { flex: 1 1 auto; display: flex; height: 14px; }
.bar { height: 14px; border-radius: 0 4px 4px 0; background: var(--series-1); }
.seg { height: 14px; margin-right: 2px; }
.seg:first-child { border-radius: 4px 0 0 4px; }
.seg:last-child { border-radius: 0 4px 4px 0; margin-right: 0; }
.bar-value { flex: 0 0 7rem; color: var(--text-secondary); }
.legend { display: flex; flex-wrap: wrap; gap: 1rem; margin: .6rem 0; }
.legend span.swatch { display: inline-block; width: 10px; height: 10px;
  border-radius: 2px; margin-right: .35rem; }
.meta { color: var(--text-secondary); }
.curve { margin: .4rem 0 1rem; }
.curve svg { display: block; }
.heat { display: grid; gap: 1px; margin: .6rem 0 1rem; width: max-content; }
.heat span { width: 8px; height: 8px; display: block;
  background: var(--surface-2); }
)css";

void bar_section(std::ostream& out, const std::string& id,
                 const std::string& heading,
                 const std::vector<std::pair<std::string, double>>& items,
                 const std::string& unit) {
  if (items.empty()) return;
  double max_value = 0.0;
  for (const auto& [name, value] : items) {
    max_value = std::max(max_value, value);
  }
  out << "<section id=\"" << id << "\">\n<h2>" << html_escape(heading)
      << "</h2>\n";
  for (const auto& [name, value] : items) {
    const double frac = max_value > 0.0 ? value / max_value : 0.0;
    out << "<div class=\"bar-row\"><span class=\"bar-label\">"
        << html_escape(name) << "</span><div class=\"bar-track\">"
        << "<div class=\"bar\" style=\"width:" << pct(frac)
        << "%\" title=\"" << html_escape(name) << ": "
        << format_double(value, 3) << " " << unit
        << "\"></div></div><span class=\"bar-value\">"
        << format_double(value, 2) << " " << unit << "</span></div>\n";
  }
  out << "</section>\n";
}

void metadata_section(std::ostream& out, const JsonValue& record) {
  out << "<section id=\"metadata\">\n<h2>Run metadata</h2>\n<table>\n";
  auto row = [&](const std::string& key, const std::string& value) {
    out << "<tr><td>" << html_escape(key) << "</td><td>"
        << html_escape(value) << "</td></tr>\n";
  };
  if (const JsonValue* schema = record.find("schema")) {
    row("schema", schema->string_or(""));
  }
  if (const JsonValue* binary = record.find("binary")) {
    row("binary", binary->string_or(""));
  }
  const JsonValue* metadata = record.find("metadata");
  if (metadata != nullptr && metadata->is_object()) {
    for (const auto& [key, value] : metadata->as_object()) {
      std::string rendered;
      if (value.is_string()) {
        rendered = value.as_string();
      } else if (value.is_number()) {
        const double v = value.as_number();
        rendered = v == std::floor(v) && std::fabs(v) < 1e15
                       ? std::to_string(static_cast<long long>(v))
                       : format_double(v, 4);
      } else if (value.is_array()) {
        std::vector<std::string> parts;
        for (const JsonValue& item : value.as_array()) {
          parts.push_back(item.string_or("?"));
        }
        rendered = join(parts, ", ");
      }
      row(key, rendered);
    }
  }
  out << "</table>\n</section>\n";
}

void phases_section(std::ostream& out, const JsonValue& record) {
  const JsonValue* phases = record.find("phases");
  if (phases == nullptr || !phases->is_array()) return;
  std::vector<std::pair<std::string, double>> items;
  for (const JsonValue& phase : phases->as_array()) {
    const JsonValue* name = phase.find("name");
    const JsonValue* wall = phase.find("wall_ms");
    if (name == nullptr || wall == nullptr || !wall->is_number()) continue;
    items.emplace_back(name->string_or("?"), wall->as_number());
  }
  bar_section(out, "phases", "Phase durations", items, "ms");
}

void html_table(std::ostream& out, const JsonValue& table,
                std::size_t index) {
  const JsonValue* header = table.find("header");
  const JsonValue* rows = table.find("rows");
  if (header == nullptr || rows == nullptr || !header->is_array() ||
      !rows->is_array()) {
    return;
  }
  std::string title =
      table.find("title") != nullptr ? table.find("title")->string_or("")
                                     : "";
  if (title.empty()) title = "table " + std::to_string(index + 1);
  out << "<h3>" << html_escape(title) << "</h3>\n<table>\n<tr>";
  for (const JsonValue& cell : header->as_array()) {
    out << "<th>" << html_escape(cell.string_or("")) << "</th>";
  }
  out << "</tr>\n";
  for (const JsonValue& row : rows->as_array()) {
    out << "<tr>";
    for (const JsonValue& cell : row.as_array()) {
      out << "<td>" << html_escape(cell.string_or("")) << "</td>";
    }
    out << "</tr>\n";
  }
  out << "</table>\n";
}

/// The "% of optimal" panel: every table column named *headroom_pct
/// becomes one bar per row on an absolute 0-100 scale (100 = the run
/// moved provably-minimal bytes across that boundary).  Covers both
/// shapes the observatory emits: long-form tables with a "level" column
/// (mlsc_map, bench data-movement) and wide-form tables with
/// l1_/l2_/l3_headroom_pct columns (bench_headroom).
void headroom_section(std::ostream& out, const JsonValue& record) {
  const JsonValue* tables = record.find("tables");
  if (tables == nullptr || !tables->is_array()) return;

  std::vector<std::pair<std::string, double>> items;
  for (const JsonValue& table : tables->as_array()) {
    const JsonValue* header = table.find("header");
    const JsonValue* rows = table.find("rows");
    if (header == nullptr || rows == nullptr || !header->is_array() ||
        !rows->is_array()) {
      continue;
    }
    const auto& cols = header->as_array();
    std::vector<std::size_t> headroom_cols;
    std::size_t level_col = cols.size();
    for (std::size_t c = 0; c < cols.size(); ++c) {
      const std::string name = cols[c].string_or("");
      if (name.find("headroom_pct") != std::string::npos) {
        headroom_cols.push_back(c);
      } else if (name == "level") {
        level_col = c;
      }
    }
    if (headroom_cols.empty()) continue;

    for (const JsonValue& row : rows->as_array()) {
      const auto& cells = row.as_array();
      if (cells.empty()) continue;
      std::string base = cells[0].string_or("");
      if (level_col != cols.size() && level_col != 0 &&
          level_col < cells.size()) {
        base += " " + cells[level_col].string_or("");
      }
      for (std::size_t c : headroom_cols) {
        if (c >= cells.size()) continue;
        const std::string cell = cells[c].string_or("");
        char* end = nullptr;
        const double value = std::strtod(cell.c_str(), &end);
        if (end == cell.c_str()) continue;  // not a number
        std::string label = base;
        const std::string col = cols[c].string_or("");
        if (col != "headroom_pct") {
          // "l2_headroom_pct" -> "... l2"
          label += " " + col.substr(0, col.find("_headroom_pct"));
        }
        items.emplace_back(std::move(label), value);
      }
    }
  }
  if (items.empty()) return;

  out << "<section id=\"headroom\">\n<h2>I/O headroom (% of optimal)</h2>\n"
      << "<p class=\"subtitle\">measured bytes crossing each cache "
         "boundary vs. the red-blue-pebble I/O lower bound; 100% means "
         "the run moved provably-minimal data</p>\n";
  for (const auto& [label, value] : items) {
    out << "<div class=\"bar-row\"><span class=\"bar-label\">"
        << html_escape(label) << "</span><div class=\"bar-track\">"
        << "<div class=\"bar\" style=\"width:" << pct(value / 100.0)
        << "%\" title=\"" << html_escape(label) << ": "
        << format_double(value, 2) << "% of optimal\"></div></div>"
        << "<span class=\"bar-value\">" << format_double(value, 1)
        << "%</span></div>\n";
  }
  out << "</section>\n";
}

/// The "Explain" panel (DESIGN.md §18), rendered from the record's
/// "insight" section: per-level miss classification as stacked bars,
/// miss-vs-capacity curves from the reuse-distance profiler (configured
/// capacity marked), and the inter-client eviction-attribution heatmap.
void insight_section(std::ostream& out, const JsonValue& record) {
  const JsonValue* insight = record.find("insight");
  if (insight == nullptr || !insight->is_object()) return;
  const JsonValue* levels = insight->find("levels");
  if (levels == nullptr || !levels->is_array() ||
      levels->as_array().empty()) {
    return;
  }
  const JsonValue* clients = insight->find("num_clients");
  const std::size_t num_clients = static_cast<std::size_t>(
      clients != nullptr ? clients->number_or(0.0) : 0.0);

  out << "<section id=\"insight\">\n<h2>Explain: why does it miss?</h2>\n"
      << "<p class=\"subtitle\">reuse-distance profiler attached to every "
         "cache in one replay: miss classes, miss-vs-capacity curves, and "
         "inter-client eviction attribution</p>\n";

  // Classification stacked bars: one bar per level, split compulsory /
  // capacity / interference.  Palette slots reuse the stall chart's
  // validated series (the data table below is the accessible fallback).
  struct MissClass {
    const char* key;
    const char* css;
  };
  constexpr MissClass kClasses[] = {
      {"compulsory", "--series-1"},
      {"capacity", "--series-4"},
      {"interference", "--series-2"},
  };
  out << "<div class=\"legend\">";
  for (const MissClass& mc : kClasses) {
    out << "<span><span class=\"swatch\" style=\"background:var(" << mc.css
        << ")\"></span>" << mc.key << "</span>";
  }
  out << "</div>\n";
  double max_misses = 0.0;
  for (const JsonValue& level : levels->as_array()) {
    const JsonValue* misses = level.find("misses");
    if (misses != nullptr) {
      max_misses = std::max(max_misses, misses->number_or(0.0));
    }
  }
  for (const JsonValue& level : levels->as_array()) {
    const std::string name =
        level.find("level") != nullptr ? level.find("level")->string_or("?")
                                       : "?";
    const double misses = level.find("misses") != nullptr
                              ? level.find("misses")->number_or(0.0)
                              : 0.0;
    out << "<div class=\"bar-row\"><span class=\"bar-label\">"
        << html_escape(name) << " (" << static_cast<long long>(misses)
        << " misses)</span><div class=\"bar-track\" style=\"width:"
        << pct(max_misses > 0.0 ? misses / max_misses : 0.0)
        << "%;flex-grow:0\">";
    for (const MissClass& mc : kClasses) {
      const JsonValue* count = level.find(mc.key);
      const double value = count != nullptr ? count->number_or(0.0) : 0.0;
      if (value <= 0.0) continue;
      out << "<span class=\"seg\" style=\"width:"
          << pct(misses > 0.0 ? value / misses : 0.0) << "%;background:var("
          << mc.css << ")\" title=\"" << html_escape(name) << " " << mc.key
          << ": " << static_cast<long long>(value) << " ("
          << format_double(misses > 0.0 ? 100.0 * value / misses : 0.0, 1)
          << "%)\"></span>";
    }
    out << "</div><span class=\"bar-value\">"
        << static_cast<long long>(misses) << "</span></div>\n";
  }

  // Miss-vs-capacity curves, one per level: the Mattson profiler's
  // predicted misses at log-spaced capacities (x log-scaled), with the
  // configured capacity marked.  Every point came from the same replay.
  for (const JsonValue& level : levels->as_array()) {
    const JsonValue* curve = level.find("curve");
    if (curve == nullptr || !curve->is_array() ||
        curve->as_array().size() < 2) {
      continue;
    }
    const std::string name =
        level.find("level") != nullptr ? level.find("level")->string_or("?")
                                       : "?";
    const double configured =
        level.find("capacity_chunks") != nullptr
            ? level.find("capacity_chunks")->number_or(0.0)
            : 0.0;
    std::vector<std::pair<double, double>> points;  // (capacity, misses)
    double max_pred = 0.0;
    for (const JsonValue& point : curve->as_array()) {
      if (!point.is_array() || point.as_array().size() != 2) continue;
      const double cap = point.as_array()[0].number_or(0.0);
      const double pred = point.as_array()[1].number_or(0.0);
      if (cap <= 0.0) continue;
      points.emplace_back(cap, pred);
      max_pred = std::max(max_pred, pred);
    }
    if (points.size() < 2 || max_pred <= 0.0) continue;
    const double log_lo = std::log(points.front().first);
    const double log_hi = std::log(points.back().first);
    if (log_hi <= log_lo) continue;
    constexpr double kW = 560.0, kH = 140.0, kPad = 8.0;
    auto x_of = [&](double cap) {
      return kPad + (kW - 2 * kPad) * (std::log(cap) - log_lo) /
                        (log_hi - log_lo);
    };
    auto y_of = [&](double pred) {
      return kH - kPad - (kH - 2 * kPad) * pred / max_pred;
    };
    out << "<h3>" << html_escape(name)
        << " misses vs. capacity (chunks, log scale)</h3>\n"
        << "<div class=\"curve\"><svg width=\"" << kW << "\" height=\""
        << kH << "\" viewBox=\"0 0 " << kW << " " << kH
        << "\" role=\"img\" aria-label=\"" << html_escape(name)
        << " miss-vs-capacity curve\">\n";
    if (configured > 0.0 && configured >= points.front().first &&
        configured <= points.back().first) {
      const double mx = x_of(configured);
      out << "<line x1=\"" << format_double(mx, 1) << "\" y1=\"" << kPad
          << "\" x2=\"" << format_double(mx, 1) << "\" y2=\"" << kH - kPad
          << "\" stroke=\"var(--series-2)\" stroke-dasharray=\"4 3\">"
          << "<title>configured capacity: "
          << static_cast<long long>(configured) << " chunks</title></line>\n";
    }
    out << "<polyline fill=\"none\" stroke=\"var(--series-1)\" "
           "stroke-width=\"2\" points=\"";
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (i != 0) out << " ";
      out << format_double(x_of(points[i].first), 1) << ","
          << format_double(y_of(points[i].second), 1);
    }
    out << "\"/>\n</svg></div>\n<p class=\"meta\">" << html_escape(name)
        << ": " << static_cast<long long>(points.front().second)
        << " misses at " << static_cast<long long>(points.front().first)
        << " chunks &rarr; " << static_cast<long long>(points.back().second)
        << " at " << static_cast<long long>(points.back().first)
        << "; dashed marker = configured ("
        << static_cast<long long>(configured) << ")</p>\n";
  }

  // Eviction-attribution heatmaps: victim rows x evictor columns, cell
  // intensity = eviction count (self-evictions included; the diagonal
  // is ordinary capacity churn, off-diagonal is interference).
  if (num_clients >= 2) {
    for (const JsonValue& level : levels->as_array()) {
      const JsonValue* matrix = level.find("eviction_matrix");
      if (matrix == nullptr || !matrix->is_array() ||
          matrix->as_array().size() != num_clients) {
        continue;
      }
      const std::string name =
          level.find("level") != nullptr
              ? level.find("level")->string_or("?")
              : "?";
      double max_count = 0.0;
      for (const JsonValue& row : matrix->as_array()) {
        if (!row.is_array()) continue;
        for (const JsonValue& cell : row.as_array()) {
          max_count = std::max(max_count, cell.number_or(0.0));
        }
      }
      if (max_count <= 0.0) continue;
      out << "<h3>" << html_escape(name)
          << " eviction attribution (rows: victim, columns: evictor)</h3>\n"
          << "<div class=\"heat\" style=\"grid-template-columns:repeat("
          << num_clients << ",8px)\">\n";
      const auto& rows = matrix->as_array();
      for (std::size_t v = 0; v < rows.size(); ++v) {
        if (!rows[v].is_array()) continue;
        const auto& cells = rows[v].as_array();
        for (std::size_t e = 0; e < cells.size(); ++e) {
          const double count = cells[e].number_or(0.0);
          if (count <= 0.0) {
            out << "<span></span>";
            continue;
          }
          out << "<span style=\"background:var(--series-2);opacity:"
              << format_double(0.15 + 0.85 * count / max_count, 3)
              << "\" title=\"client " << e << " evicted client " << v
              << " x" << static_cast<long long>(count) << "\"></span>";
        }
        out << "\n";
      }
      out << "</div>\n";
    }
  }
  out << "</section>\n";
}

void tables_section(std::ostream& out, const JsonValue& record) {
  const JsonValue* tables = record.find("tables");
  if (tables == nullptr || !tables->is_array() ||
      tables->as_array().empty()) {
    return;
  }
  out << "<section id=\"tables\">\n<h2>Result tables</h2>\n";
  const auto& array = tables->as_array();
  for (std::size_t i = 0; i < array.size(); ++i) {
    html_table(out, array[i], i);
  }
  out << "</section>\n";
}

void histogram_chart(std::ostream& out, const std::string& name,
                     const JsonValue& hist) {
  const JsonValue* bounds = hist.find("bounds");
  const JsonValue* counts = hist.find("counts");
  if (bounds == nullptr || counts == nullptr || !bounds->is_array() ||
      !counts->is_array()) {
    return;
  }
  const auto& bound_array = bounds->as_array();
  const auto& count_array = counts->as_array();
  std::vector<std::pair<std::string, double>> items;
  for (std::size_t i = 0; i < count_array.size(); ++i) {
    const std::string label =
        i < bound_array.size()
            ? "&le; " + format_double(bound_array[i].number_or(0.0), 0)
            : "overflow";
    items.emplace_back(label, count_array[i].number_or(0.0));
  }
  out << "<h3>" << html_escape(name) << "</h3>\n";
  // Empty histograms have NaN quantiles (written as JSON null): render
  // them as "—", not as a number, and skip the zero-width bucket bars.
  if (const JsonValue* quantiles = hist.find("quantiles")) {
    if (quantiles->is_object()) {
      std::vector<std::string> parts;
      for (const auto& [q, value] : quantiles->as_object()) {
        parts.push_back(q + " = " +
                        (value.is_number()
                             ? format_double(value.as_number(), 1)
                             : std::string("—")));
      }
      out << "<p class=\"meta\">" << html_escape(join(parts, ", "))
          << "</p>\n";
    }
  }
  double max_count = 0.0;
  for (const auto& [label, count] : items) {
    max_count = std::max(max_count, count);
  }
  if (max_count <= 0.0) {
    out << "<p class=\"meta\">&mdash; no observations</p>\n";
    return;
  }
  for (const auto& [label, count] : items) {
    const double frac = max_count > 0.0 ? count / max_count : 0.0;
    // Bucket labels are pre-escaped ("&le;"), so emit them raw.
    out << "<div class=\"bar-row\"><span class=\"bar-label\">" << label
        << "</span><div class=\"bar-track\"><div class=\"bar\" style=\""
        << "width:" << pct(frac) << "%\"></div></div>"
        << "<span class=\"bar-value\">"
        << static_cast<long long>(count) << "</span></div>\n";
  }
}

void metrics_section(std::ostream& out, const JsonValue& record) {
  const JsonValue* metrics = record.find("metrics");
  if (metrics == nullptr || !metrics->is_object()) return;
  out << "<section id=\"metrics\">\n<h2>Metrics</h2>\n";

  const JsonValue* counters = metrics->find("counters");
  const JsonValue* gauges = metrics->find("gauges");
  const bool have_counters = counters != nullptr && counters->is_object() &&
                             !counters->as_object().empty();
  const bool have_gauges = gauges != nullptr && gauges->is_object() &&
                           !gauges->as_object().empty();
  if (have_counters || have_gauges) {
    out << "<table>\n<tr><th>instrument</th><th>value</th></tr>\n";
    if (have_counters) {
      for (const auto& [name, value] : counters->as_object()) {
        out << "<tr><td>" << html_escape(name) << "</td><td>"
            << static_cast<long long>(value.number_or(0.0))
            << "</td></tr>\n";
      }
    }
    if (have_gauges) {
      for (const auto& [name, value] : gauges->as_object()) {
        out << "<tr><td>" << html_escape(name) << "</td><td>"
            << (value.is_number() ? format_double(value.as_number(), 4)
                                  : std::string("n/a"))
            << "</td></tr>\n";
      }
    }
    out << "</table>\n";
  }

  const JsonValue* histograms = metrics->find("histograms");
  if (histograms != nullptr && histograms->is_object()) {
    for (const auto& [name, hist] : histograms->as_object()) {
      histogram_chart(out, name, hist);
    }
  }
  out << "</section>\n";
}

void stall_section(std::ostream& out, const JsonValue& trace) {
  const JsonValue* events = trace.find("traceEvents");
  if (events == nullptr || !events->is_array()) return;

  // client index -> per-category microsecond totals.
  std::map<long long, std::vector<double>> clients;
  for (const JsonValue& event : events->as_array()) {
    const JsonValue* ph = event.find("ph");
    const JsonValue* pid = event.find("pid");
    const JsonValue* name = event.find("name");
    const JsonValue* dur = event.find("dur");
    if (ph == nullptr || pid == nullptr || name == nullptr ||
        dur == nullptr || ph->string_or("") != "X" || !pid->is_number()) {
      continue;
    }
    const long long p = static_cast<long long>(pid->as_number());
    if (p < kClientPidBase) continue;  // real-time (host) track
    auto& totals = clients[p - kClientPidBase];
    if (totals.empty()) totals.assign(kNumCategories, 0.0);
    const std::string& category = name->string_or("");
    for (std::size_t c = 0; c < kNumCategories; ++c) {
      if (category == kStallCategories[c].name) {
        totals[c] += dur->number_or(0.0);
        break;
      }
    }
  }
  if (clients.empty()) return;

  double max_total = 0.0;
  for (const auto& [client, totals] : clients) {
    double total = 0.0;
    for (double t : totals) total += t;
    max_total = std::max(max_total, total);
  }

  out << "<section id=\"stall\">\n"
      << "<h2>Per-client I/O stall breakdown</h2>\n"
      << "<p class=\"subtitle\">simulated time per client, split by where "
         "each access was served (trace-derived)</p>\n<div class=\"legend\">";
  for (const Category& category : kStallCategories) {
    out << "<span><span class=\"swatch\" style=\"background:var("
        << category.css << ")\"></span>" << html_escape(category.name)
        << "</span>";
  }
  out << "</div>\n";

  for (const auto& [client, totals] : clients) {
    double total = 0.0;
    for (double t : totals) total += t;
    out << "<div class=\"bar-row stall-client\"><span class=\"bar-label\">"
        << "client " << client << "</span><div class=\"bar-track\" style=\""
        << "width:" << pct(max_total > 0.0 ? total / max_total : 0.0)
        << "%;flex-grow:0\">";
    for (std::size_t c = 0; c < kNumCategories; ++c) {
      if (totals[c] <= 0.0) continue;
      out << "<span class=\"seg\" style=\"width:"
          << pct(total > 0.0 ? totals[c] / total : 0.0)
          << "%;background:var(" << kStallCategories[c].css << ")\" title=\""
          << kStallCategories[c].name << ": "
          << format_double(totals[c] / 1000.0, 3) << " ms ("
          << format_double(total > 0.0 ? 100.0 * totals[c] / total : 0.0, 1)
          << "%)\"></span>";
    }
    out << "</div><span class=\"bar-value\">"
        << format_double(total / 1000.0, 2) << " ms</span></div>\n";
  }

  // Table view of the same data (the accessible fallback — some light
  // palette slots sit below 3:1 contrast on the light surface).
  out << "<table>\n<tr><th>client</th>";
  for (const Category& category : kStallCategories) {
    out << "<th>" << html_escape(category.name) << " (ms)</th>";
  }
  out << "<th>total (ms)</th></tr>\n";
  for (const auto& [client, totals] : clients) {
    double total = 0.0;
    for (double t : totals) total += t;
    out << "<tr><td>client " << client << "</td>";
    for (double t : totals) {
      out << "<td>" << format_double(t / 1000.0, 3) << "</td>";
    }
    out << "<td>" << format_double(total / 1000.0, 3) << "</td></tr>\n";
  }
  out << "</table>\n</section>\n";
}

}  // namespace

std::string render_html_report(const JsonValue& record,
                               const JsonValue* trace) {
  std::ostringstream out;
  const std::string binary =
      record.find("binary") != nullptr
          ? record.find("binary")->string_or("run")
          : "run";
  out << "<!doctype html>\n<html lang=\"en\">\n<head>\n"
      << "<meta charset=\"utf-8\">\n"
      << "<meta name=\"viewport\" content=\"width=device-width, "
         "initial-scale=1\">\n"
      << "<title>mlsc run report &mdash; " << html_escape(binary)
      << "</title>\n<style>" << kStyle << "</style>\n</head>\n<body>\n"
      << "<h1>mlsc run report &mdash; " << html_escape(binary) << "</h1>\n"
      << "<p class=\"subtitle\">Computation mapping for multi-level storage "
         "cache hierarchies &mdash; regression observatory run record"
         "</p>\n";
  metadata_section(out, record);
  phases_section(out, record);
  headroom_section(out, record);
  insight_section(out, record);
  tables_section(out, record);
  metrics_section(out, record);
  if (trace != nullptr) stall_section(out, *trace);
  out << "</body>\n</html>\n";
  return out.str();
}

}  // namespace mlsc::obs
