#include "obs/lower_bound.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace mlsc::obs {
namespace {

using poly::ArrayRef;
using poly::LoopNest;
using poly::Program;

/// Saturating multiply keeps footprint products from wrapping on
/// adversarial extents; the bound only ever compares against measured
/// traffic, so saturation is harmless.
std::uint64_t sat_mul(std::uint64_t a, std::uint64_t b) {
  if (a != 0 && b > std::numeric_limits<std::uint64_t>::max() / a) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  return a * b;
}

/// Lower bound on the distinct elements one direct reference touches
/// over the nest's whole iteration space: group array dimensions that
/// share an iterator, take the largest single-iterator extent within
/// each group (varying that iterator alone already produces that many
/// distinct index vectors), and multiply across independent groups.
std::uint64_t ref_distinct_elements(const LoopNest& nest,
                                    const ArrayRef& ref) {
  const std::size_t rank = ref.map.rank();
  if (rank == 0) return 1;
  const std::size_t depth = nest.depth();

  std::vector<std::size_t> parent(rank);
  std::iota(parent.begin(), parent.end(), std::size_t{0});
  auto find = [&](std::size_t d) {
    while (parent[d] != d) d = parent[d] = parent[parent[d]];
    return d;
  };

  // Per-dimension: the largest extent of any iterator it reads; union
  // dimensions that read the same iterator.
  std::vector<std::uint64_t> dim_value(rank, 1);
  for (std::size_t k = 0; k < depth; ++k) {
    const auto extent =
        static_cast<std::uint64_t>(nest.space.loop(k).extent());
    std::size_t first_dim = rank;  // first dim using iterator k
    for (std::size_t d = 0; d < rank; ++d) {
      if (ref.map.expr(d).coeff(k) == 0) continue;
      dim_value[d] = std::max(dim_value[d], extent);
      if (first_dim == rank) {
        first_dim = d;
      } else {
        parent[find(d)] = find(first_dim);
      }
    }
  }

  // Group value: dimensions coupled through shared iterators cannot be
  // varied independently, so the group contributes only its max.
  std::vector<std::uint64_t> group_value(rank, 0);
  for (std::size_t d = 0; d < rank; ++d) {
    std::size_t g = find(d);
    group_value[g] = std::max(group_value[g], dim_value[d]);
  }
  std::uint64_t total = 1;
  for (std::size_t d = 0; d < rank; ++d) {
    if (find(d) == d) total = sat_mul(total, group_value[d]);
  }
  return total;
}

/// One deduplicated direct reference for the capacity term: which loops
/// it reads (bitmask) and its element size.
struct CoverRef {
  std::uint64_t loop_mask = 0;
  double element_bytes = 8.0;
};

std::vector<CoverRef> cover_refs(const Program& program,
                                 const LoopNest& nest) {
  std::vector<CoverRef> refs;
  for (const ArrayRef& ref : nest.refs) {
    if (ref.is_indirect()) continue;  // conservative: no cover credit
    std::uint64_t mask = 0;
    for (std::size_t d = 0; d < ref.map.rank(); ++d) {
      for (std::size_t k = 0; k < nest.depth() && k < 64; ++k) {
        if (ref.map.expr(d).coeff(k) != 0) mask |= std::uint64_t{1} << k;
      }
    }
    CoverRef entry{mask, static_cast<double>(
                             program.array(ref.array).element_size_bytes)};
    bool duplicate = false;
    for (const CoverRef& seen : refs) {
      if (seen.loop_mask == entry.loop_mask &&
          seen.element_bytes == entry.element_bytes) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) refs.push_back(entry);
    // 2^16 subsets is the enumeration budget; dropping extra references
    // only loosens the cover (their loops fall back to the uncovered
    // multiplier), never invalidates it.
    if (refs.size() >= 16) break;
  }
  return refs;
}

/// Smallest H(2M) over all reference subsets: the tightest iterations-
/// per-segment cap any uniform-weight fractional cover yields.  Loops a
/// subset leaves uncovered multiply H by their full extent (trivially an
/// upper bound along that loop).  Returns H >= 1; `exponent_out` gets
/// the winning subset's total weight |R|/c.
double min_segment_capacity(const LoopNest& nest,
                            const std::vector<CoverRef>& refs,
                            double fast_bytes, double* exponent_out) {
  const std::size_t depth = std::min<std::size_t>(nest.depth(), 64);
  std::vector<double> extent(depth);
  for (std::size_t k = 0; k < depth; ++k) {
    extent[k] = static_cast<double>(nest.space.loop(k).extent());
  }
  auto uncovered_product = [&](std::uint64_t covered) {
    double p = 1.0;
    for (std::size_t k = 0; k < depth; ++k) {
      if ((covered & (std::uint64_t{1} << k)) == 0) p *= extent[k];
    }
    return p;
  };

  // The empty cover: every loop uncovered, H = T (capacity term 0).
  double best = uncovered_product(0);
  double best_exponent = 0.0;
  const double segment_bytes = 2.0 * fast_bytes;

  const std::size_t n = refs.size();
  for (std::uint64_t subset = 1; subset < (std::uint64_t{1} << n);
       ++subset) {
    std::uint64_t covered = 0;
    for (std::size_t r = 0; r < n; ++r) {
      if (subset & (std::uint64_t{1} << r)) covered |= refs[r].loop_mask;
    }
    // Uniform weights 1/c are feasible when c is the subset's minimum
    // per-loop cover count (every covered loop then gets weight >= 1).
    std::uint64_t c_min = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t k = 0; k < depth; ++k) {
      if ((covered & (std::uint64_t{1} << k)) == 0) continue;
      std::uint64_t c = 0;
      for (std::size_t r = 0; r < n; ++r) {
        if ((subset & (std::uint64_t{1} << r)) &&
            (refs[r].loop_mask & (std::uint64_t{1} << k))) {
          ++c;
        }
      }
      c_min = std::min(c_min, c);
    }
    if (covered == 0) continue;  // all-constant refs cover nothing
    const double weight = 1.0 / static_cast<double>(c_min);
    double h = uncovered_product(covered);
    double exponent = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      if ((subset & (std::uint64_t{1} << r)) == 0) continue;
      // A segment holds at most 2M/e_r distinct elements of r (never
      // fewer than one useful element, which keeps H an upper bound).
      const double elements =
          std::max(1.0, segment_bytes / refs[r].element_bytes);
      h *= std::pow(elements, weight);
      exponent += weight;
    }
    if (h < best) {
      best = h;
      best_exponent = exponent;
    }
  }
  if (exponent_out != nullptr) *exponent_out = best_exponent;
  return std::max(best, 1.0);
}

/// Hong-Kung segment bound for one nest at one boundary:
/// Q >= M * (T / H(2M) - 1), clamped at zero.
std::uint64_t nest_capacity_bytes(const LoopNest& nest,
                                  const std::vector<CoverRef>& refs,
                                  std::uint64_t fast_bytes) {
  if (fast_bytes == 0 || nest.space.size() == 0 || refs.empty()) return 0;
  const double m = static_cast<double>(fast_bytes);
  const double h = min_segment_capacity(nest, refs, m, nullptr);
  const double t = static_cast<double>(nest.space.size());
  const double q = m * (t / h - 1.0);
  if (q <= 0.0) return 0;
  if (q >= static_cast<double>(std::numeric_limits<std::uint64_t>::max())) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  return static_cast<std::uint64_t>(q);
}

}  // namespace

IoLowerBound compute_io_lower_bound(const Program& program,
                                    const std::vector<LevelSpec>& levels) {
  IoLowerBound result;

  // Compulsory term: per array, the largest per-nest distinct-element
  // lower bound (the union across nests is at least any single nest's).
  std::vector<std::uint64_t> array_elements(program.arrays.size(), 0);
  for (const LoopNest& nest : program.nests) {
    if (nest.space.size() == 0) continue;
    for (const ArrayRef& ref : nest.refs) {
      if (ref.is_indirect()) continue;
      array_elements[ref.array] = std::max(
          array_elements[ref.array],
          std::min(ref_distinct_elements(nest, ref),
                   program.array(ref.array).num_elements()));
    }
  }
  for (std::size_t a = 0; a < program.arrays.size(); ++a) {
    result.footprint_bytes +=
        sat_mul(array_elements[a], program.arrays[a].element_size_bytes);
  }

  std::vector<std::vector<CoverRef>> nest_refs;
  nest_refs.reserve(program.nests.size());
  for (const LoopNest& nest : program.nests) {
    nest_refs.push_back(cover_refs(program, nest));
  }

  for (const LevelSpec& level : levels) {
    LevelBound bound;
    bound.level = level.name;
    bound.fast_memory_bytes = level.fast_memory_bytes;
    bound.compulsory_bytes = result.footprint_bytes;
    for (std::size_t i = 0; i < program.nests.size(); ++i) {
      bound.capacity_bytes += nest_capacity_bytes(
          program.nests[i], nest_refs[i], level.fast_memory_bytes);
    }
    bound.bound_bytes = std::max(bound.compulsory_bytes,
                                 bound.capacity_bytes);
    result.levels.push_back(std::move(bound));
  }

  // Diagnostics: the cover each nest settles on at the innermost level.
  const double probe_bytes =
      levels.empty() ? 0.0
                     : static_cast<double>(levels.front().fast_memory_bytes);
  for (std::size_t i = 0; i < program.nests.size(); ++i) {
    NestCover cover;
    cover.nest = program.nests[i].name;
    cover.iterations = program.nests[i].space.size();
    if (!nest_refs[i].empty() && probe_bytes > 0.0) {
      min_segment_capacity(program.nests[i], nest_refs[i], probe_bytes,
                           &cover.cover_exponent);
    }
    result.nests.push_back(std::move(cover));
  }
  return result;
}

}  // namespace mlsc::obs
