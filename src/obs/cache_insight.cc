#include "obs/cache_insight.h"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "support/string_util.h"

namespace mlsc::obs {

// --- MattsonStack ---------------------------------------------------------

void MattsonStack::fenwick_add(std::size_t slot, std::int64_t delta) {
  for (std::size_t i = slot + 1; i < fenwick_.size(); i += i & (~i + 1)) {
    fenwick_[i] += delta;
  }
}

std::uint64_t MattsonStack::fenwick_prefix(std::size_t slot) const {
  std::int64_t sum = 0;
  for (std::size_t i = slot + 1; i > 0; i -= i & (~i + 1)) {
    sum += fenwick_[i];
  }
  return static_cast<std::uint64_t>(sum);
}

void MattsonStack::renumber(std::size_t new_capacity) {
  std::vector<std::uint32_t> order;
  order.reserve(last_slot_.size());
  for (std::size_t s = 0; s < live_.size(); ++s) {
    if (live_[s] != 0) order.push_back(slot_chunk_[s]);
  }
  fenwick_.assign(new_capacity + 1, 0);
  slot_chunk_.assign(new_capacity, 0);
  live_.assign(new_capacity, 0);
  next_slot_ = 0;
  for (std::uint32_t chunk : order) {
    slot_chunk_[next_slot_] = chunk;
    live_[next_slot_] = 1;
    fenwick_add(next_slot_, +1);
    last_slot_[chunk] = static_cast<std::uint32_t>(next_slot_);
    ++next_slot_;
  }
}

std::uint64_t MattsonStack::access(std::uint32_t chunk) {
  std::uint64_t distance = kFirstTouch;
  std::size_t live_count = last_slot_.size();
  const auto it = last_slot_.find(chunk);
  if (it != last_slot_.end()) {
    const std::size_t old = it->second;
    // Distinct chunks touched since the previous access to `chunk` =
    // live slots strictly newer than its old slot.
    distance = static_cast<std::uint64_t>(live_count) - fenwick_prefix(old);
    fenwick_add(old, -1);
    live_[old] = 0;
    --live_count;  // the chunk's own slot died; the map entry is reused
  }
  if (next_slot_ == live_.size()) {
    // The slot array is full: compact in place when at most half the
    // slots are live, otherwise double first — amortized O(1) growth.
    std::size_t capacity = std::max<std::size_t>(live_.size(), 1024);
    if (live_count * 2 > capacity) capacity *= 2;
    renumber(capacity);
  }
  slot_chunk_[next_slot_] = chunk;
  live_[next_slot_] = 1;
  fenwick_add(next_slot_, +1);
  last_slot_[chunk] = static_cast<std::uint32_t>(next_slot_);
  ++next_slot_;
  return distance;
}

void MattsonStack::clear() {
  fenwick_.clear();
  slot_chunk_.clear();
  live_.clear();
  last_slot_.clear();
  next_slot_ = 0;
}

// --- CacheInsight ---------------------------------------------------------

CacheInsight::CacheInsight(std::string name, int level,
                           std::uint64_t capacity_chunks,
                           const HierarchyInsight& owner)
    : name_(std::move(name)),
      level_(level),
      configured_capacity_(capacity_chunks),
      current_capacity_(capacity_chunks),
      owner_(owner),
      solo_(owner.num_clients()),
      hist_(static_cast<std::size_t>(4 * capacity_chunks), 0),
      eviction_matrix_(static_cast<std::size_t>(owner.num_clients()) *
                           owner.num_clients(),
                       0) {}

void CacheInsight::on_access(std::uint32_t chunk, bool hit) {
  ++accesses_;
  const std::uint32_t client = owner_.current_client();
  const std::uint64_t d = shared_.access(chunk);
  if (d == MattsonStack::kFirstTouch) {
    ++first_touches_;
  } else if (d < hist_.size()) {
    ++hist_[d];
  } else {
    ++overflow_;
  }
  const std::uint64_t solo_d = client < solo_.size()
                                   ? solo_[client].access(chunk)
                                   : MattsonStack::kFirstTouch;
  owner_client_[chunk] = client;  // last toucher, for victim attribution
  if (hit) {
    ++hits_;
    return;
  }
  ++misses_;
  if (d == MattsonStack::kFirstTouch) {
    // Nobody has touched the chunk at this cache (since the last cold
    // restart): unavoidable at any capacity.
    ++compulsory_;
  } else if (solo_d == MattsonStack::kFirstTouch ||
             solo_d >= current_capacity_) {
    // Running alone, this client would still miss — either it never
    // touched the chunk itself, or its own reuse distance does not fit.
    ++capacity_class_;
  } else {
    // The client's solo stream would have hit; only co-runners pushing
    // the chunk down the shared stack made this a miss.
    ++interference_;
  }
}

void CacheInsight::on_fill(std::uint32_t chunk) {
  owner_client_[chunk] = owner_.current_client();
}

void CacheInsight::on_evict(std::uint32_t victim) {
  const std::uint32_t evictor = owner_.current_client();
  const auto it = owner_client_.find(victim);
  const std::uint32_t victim_owner =
      it != owner_client_.end() ? it->second : evictor;
  const std::size_t n = owner_.num_clients();
  if (victim_owner < n && evictor < n) {
    ++eviction_matrix_[static_cast<std::size_t>(victim_owner) * n + evictor];
  }
  if (it != owner_client_.end()) owner_client_.erase(it);
}

void CacheInsight::on_erase(std::uint32_t chunk) {
  owner_client_.erase(chunk);
}

void CacheInsight::on_reset(std::uint64_t capacity_chunks) {
  shared_.clear();
  for (MattsonStack& stack : solo_) stack.clear();
  owner_client_.clear();
  current_capacity_ = capacity_chunks > 0 ? capacity_chunks : 1;
}

std::uint64_t CacheInsight::predicted_misses(std::uint64_t capacity) const {
  std::uint64_t predicted = first_touches_ + overflow_;
  const std::size_t from = static_cast<std::size_t>(
      std::min<std::uint64_t>(capacity, hist_.size()));
  for (std::size_t d = from; d < hist_.size(); ++d) predicted += hist_[d];
  return predicted;
}

void CacheInsight::accumulate(LevelInsight& out) const {
  out.accesses += accesses_;
  out.hits += hits_;
  out.misses += misses_;
  out.compulsory += compulsory_;
  out.capacity += capacity_class_;
  out.interference += interference_;
  for (CurvePoint& point : out.curve) {
    point.predicted_misses += predicted_misses(point.capacity_chunks);
  }
  if (out.eviction_matrix.size() == eviction_matrix_.size()) {
    for (std::size_t i = 0; i < eviction_matrix_.size(); ++i) {
      out.eviction_matrix[i] += eviction_matrix_[i];
    }
  }
}

// --- HierarchyInsight -----------------------------------------------------

CacheInsight& HierarchyInsight::add_cache(std::string name, int level,
                                          std::uint64_t capacity_chunks) {
  caches_.push_back(std::make_unique<CacheInsight>(std::move(name), level,
                                                   capacity_chunks, *this));
  return *caches_.back();
}

std::uint64_t HierarchyInsight::level_misses(int level) const {
  std::uint64_t total = 0;
  for (const auto& cache : caches_) {
    if (cache->level() == level) total += cache->misses();
  }
  return total;
}

std::uint64_t HierarchyInsight::level_interference(int level) const {
  std::uint64_t total = 0;
  for (const auto& cache : caches_) {
    if (cache->level() == level) total += cache->interference();
  }
  return total;
}

namespace {

/// Log-spaced capacity grid from one chunk to 4x the configured
/// capacity, force-including every distinct configured capacity so the
/// curve always carries the point the measured miss count lives at.
std::vector<CurvePoint> make_curve_grid(
    std::uint64_t max_capacity, const std::vector<std::uint64_t>& configured) {
  constexpr int kPoints = 32;
  const std::uint64_t top = std::max<std::uint64_t>(4 * max_capacity, 1);
  std::vector<std::uint64_t> capacities;
  capacities.reserve(kPoints + configured.size());
  const double hi = std::log(static_cast<double>(top));
  for (int i = 0; i < kPoints; ++i) {
    const double f = kPoints == 1 ? hi : hi * i / (kPoints - 1);
    const auto c = static_cast<std::uint64_t>(std::llround(std::exp(f)));
    capacities.push_back(std::max<std::uint64_t>(c, 1));
  }
  capacities.insert(capacities.end(), configured.begin(), configured.end());
  std::sort(capacities.begin(), capacities.end());
  capacities.erase(std::unique(capacities.begin(), capacities.end()),
                   capacities.end());
  std::vector<CurvePoint> curve;
  curve.reserve(capacities.size());
  for (std::uint64_t c : capacities) curve.push_back(CurvePoint{c, 0});
  return curve;
}

}  // namespace

InsightResult HierarchyInsight::finalize() const {
  InsightResult result;
  result.num_clients = num_clients_;
  for (int level = 1; level <= 3; ++level) {
    std::uint64_t max_capacity = 0;
    std::vector<std::uint64_t> configured;
    for (const auto& cache : caches_) {
      if (cache->level() != level) continue;
      max_capacity = std::max(max_capacity, cache->configured_capacity());
      configured.push_back(cache->configured_capacity());
    }
    if (configured.empty()) continue;
    LevelInsight out;
    out.level = level;
    out.capacity_chunks = max_capacity;
    out.curve = make_curve_grid(max_capacity, configured);
    out.eviction_matrix.assign(
        static_cast<std::size_t>(num_clients_) * num_clients_, 0);
    for (const auto& cache : caches_) {
      if (cache->level() == level) cache->accumulate(out);
    }
    result.levels.push_back(std::move(out));
  }
  return result;
}

// --- results --------------------------------------------------------------

const char* LevelInsight::level_name() const {
  switch (level) {
    case 1:
      return "l1";
    case 2:
      return "l2";
    case 3:
      return "l3";
    default:
      return "l?";
  }
}

const LevelInsight* InsightResult::level(int which) const {
  for (const LevelInsight& l : levels) {
    if (l.level == which) return &l;
  }
  return nullptr;
}

void write_insight_json(std::ostream& out, const InsightResult& insight) {
  out << "{\"num_clients\": " << insight.num_clients << ", \"levels\": [";
  for (std::size_t i = 0; i < insight.levels.size(); ++i) {
    const LevelInsight& level = insight.levels[i];
    if (i != 0) out << ",";
    out << "\n   {\"level\": ";
    write_json_string(out, level.level_name());
    out << ", \"capacity_chunks\": " << level.capacity_chunks
        << ", \"accesses\": " << level.accesses << ", \"hits\": " << level.hits
        << ", \"misses\": " << level.misses
        << ",\n    \"compulsory\": " << level.compulsory
        << ", \"capacity\": " << level.capacity
        << ", \"interference\": " << level.interference
        << ", \"interference_miss_pct\": "
        << json_number(level.interference_miss_pct())
        << ",\n    \"curve\": [";
    for (std::size_t p = 0; p < level.curve.size(); ++p) {
      if (p != 0) out << ", ";
      out << "[" << level.curve[p].capacity_chunks << ", "
          << level.curve[p].predicted_misses << "]";
    }
    out << "],\n    \"eviction_matrix\": [";
    const std::size_t n = insight.num_clients;
    for (std::size_t v = 0; v < n; ++v) {
      if (v != 0) out << ",";
      out << "\n     [";
      for (std::size_t e = 0; e < n; ++e) {
        if (e != 0) out << ", ";
        out << level.eviction_matrix[v * n + e];
      }
      out << "]";
    }
    out << (n == 0 ? "]" : "\n    ]") << "}";
  }
  out << (insight.levels.empty() ? "]" : "\n  ]") << "}";
}

}  // namespace mlsc::obs
