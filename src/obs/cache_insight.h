// Cache-behavior explanation: single-pass Mattson reuse-distance
// profiling, miss classification, and inter-client interference
// attribution (DESIGN.md §18).
//
// One CacheInsight instance rides along with one StorageCache (wired by
// MultiLevelCache::attach_insight) and observes every stat-counting
// event — access, fill, eviction, invalidation, cold restart.  From that
// stream it derives, per cache instance:
//
//   - the exact reuse-distance histogram of the *shared* access stream
//     (a Fenwick-tree order-statistic structure over the LRU stack, the
//     classic Bennett–Kruskal formulation of Mattson's one-pass
//     algorithm), from which the miss-ratio-vs-capacity curve for every
//     capacity up to 4x the configured one falls out of one replay;
//   - a classification of every miss as compulsory (first touch at this
//     cache), capacity (would still miss if the client ran alone — its
//     solo reuse distance meets or exceeds the capacity), or
//     interference (would have *hit* alone; the miss exists only because
//     other clients pushed the chunk out).  "Alone" is decided by a
//     per-client shadow stack over the client's own stream as it arrives
//     at this cache — exact for the shared levels because the private L1
//     filters each client's stream independently of co-runners.  The
//     three classes partition CacheStats::misses by construction.
//   - an eviction-attribution matrix (victim-owner client x evictor
//     client) naming who pushed out whose data.
//
// All state is per cache instance (no globals, no atomics), so the
// layer is deterministic at any thread count and survives the planned
// per-cache-domain sharding of the engine.  When insight is off the
// only cost in the cache hot path is one null-pointer test per event.
//
// The capacity curve is bit-exact for LRU under access-based placement
// with no prefetch/exclusive-invalidate perturbation (the default
// machine): an LRU cache of capacity C hits exactly when the shared
// reuse distance is < C, so the curve evaluated at the configured
// capacity reproduces CacheStats::misses.  Cold restarts (fail-stop /
// degraded capacity) reset the stacks, preserving the identity within
// each epoch.  Non-stack policies (FIFO/CLOCK/...) and placements that
// insert without an access keep the exact classification partition but
// make the curve a stack-model approximation.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace mlsc::obs {

/// Exclusive reuse distances of one access stream, computed online.
/// access() returns the number of *distinct* chunks touched since the
/// previous access to `chunk` (kFirstTouch when there was none) and
/// pushes the chunk to the top of the stack.  Internally: each access
/// occupies a time slot, a Fenwick tree counts live slots, and the
/// distance is the count of live slots after the chunk's previous slot;
/// the slot array is compacted (or doubled) when it fills, so the
/// amortized cost per access is O(log n) in the number of live chunks.
class MattsonStack {
 public:
  static constexpr std::uint64_t kFirstTouch = ~0ull;

  std::uint64_t access(std::uint32_t chunk);

  /// Forgets everything (cold restart): the next access to any chunk is
  /// a first touch again, matching a cache that lost its contents.
  void clear();

  std::size_t live_chunks() const { return last_slot_.size(); }

 private:
  void renumber(std::size_t new_capacity);
  void fenwick_add(std::size_t slot, std::int64_t delta);
  std::uint64_t fenwick_prefix(std::size_t slot) const;  // sum slots [0, slot]

  std::vector<std::int64_t> fenwick_;     // 1-based BIT over time slots
  std::vector<std::uint32_t> slot_chunk_; // slot -> chunk (when live)
  std::vector<char> live_;                // slot -> occupied?
  std::unordered_map<std::uint32_t, std::uint32_t> last_slot_;  // chunk -> slot
  std::size_t next_slot_ = 0;
};

/// One point of a miss-ratio-vs-capacity curve: the misses an LRU cache
/// of `capacity_chunks` would have taken on the observed stream.
struct CurvePoint {
  std::uint64_t capacity_chunks = 0;
  std::uint64_t predicted_misses = 0;
};

/// Per-level aggregation of every CacheInsight at that level.
struct LevelInsight {
  int level = 0;                      // 1 = client, 2 = I/O, 3 = storage
  std::uint64_t capacity_chunks = 0;  // configured per-instance capacity
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  // The miss classes; compulsory + capacity + interference == misses.
  std::uint64_t compulsory = 0;
  std::uint64_t capacity = 0;
  std::uint64_t interference = 0;
  /// Capacity curve, log-spaced from one chunk to 4x configured; always
  /// contains the configured capacity itself.
  std::vector<CurvePoint> curve;
  /// victim-major num_clients x num_clients counts: entry [v * n + e] is
  /// how often client e's fill evicted a chunk last used by client v.
  std::vector<std::uint64_t> eviction_matrix;

  double interference_miss_pct() const {
    return misses == 0 ? 0.0
                       : 100.0 * static_cast<double>(interference) /
                             static_cast<double>(misses);
  }
  const char* level_name() const;
};

struct InsightResult {
  std::uint32_t num_clients = 0;
  std::vector<LevelInsight> levels;  // ascending level order

  bool empty() const { return levels.empty(); }
  const LevelInsight* level(int which) const;
};

/// Writes the run record's "insight" section value (a JSON object).
void write_insight_json(std::ostream& out, const InsightResult& insight);

class HierarchyInsight;

/// The observer riding along with one StorageCache.  The cache calls the
/// on_* hooks from the exact sites that update CacheStats, so the
/// derived counts stay in lockstep with the published statistics.
class CacheInsight {
 public:
  CacheInsight(std::string name, int level, std::uint64_t capacity_chunks,
               const HierarchyInsight& owner);

  /// One counted lookup; `hit` mirrors the CacheStats outcome.
  void on_access(std::uint32_t chunk, bool hit);
  /// The chunk became resident (insert), charged to the current client.
  void on_fill(std::uint32_t chunk);
  /// `victim` was evicted by the fill in progress.
  void on_evict(std::uint32_t victim);
  /// The chunk was invalidated (exclusive placement).
  void on_erase(std::uint32_t chunk);
  /// Cold restart at `capacity_chunks` (fail-stop / degraded capacity):
  /// stacks and ownership forget; the classification counters survive,
  /// as CacheStats do.
  void on_reset(std::uint64_t capacity_chunks);

  const std::string& name() const { return name_; }
  int level() const { return level_; }
  std::uint64_t configured_capacity() const { return configured_capacity_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t interference() const { return interference_; }

  /// Misses an LRU cache of `capacity` chunks would take on the shared
  /// stream seen so far.  Exact for capacity <= 4x configured; larger
  /// capacities clamp to the histogram range (an upper bound).
  std::uint64_t predicted_misses(std::uint64_t capacity) const;

  /// Adds this instance's totals into a level aggregate whose curve grid
  /// is already laid out.
  void accumulate(LevelInsight& out) const;

 private:
  std::string name_;
  int level_;
  std::uint64_t configured_capacity_;
  std::uint64_t current_capacity_;
  const HierarchyInsight& owner_;  // supplies current client + fan-out

  MattsonStack shared_;
  std::vector<MattsonStack> solo_;  // one shadow stack per client

  // Shared-stream distance histogram: hist_[d] counts accesses at
  // exclusive reuse distance d for d < 4x configured capacity;
  // overflow_ counts the rest; first touches are counted separately.
  std::vector<std::uint64_t> hist_;
  std::uint64_t overflow_ = 0;
  std::uint64_t first_touches_ = 0;

  std::uint64_t accesses_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t compulsory_ = 0;
  std::uint64_t capacity_class_ = 0;
  std::uint64_t interference_ = 0;

  // chunk -> client whose access/fill last touched it (for attribution).
  std::unordered_map<std::uint32_t, std::uint32_t> owner_client_;
  std::vector<std::uint64_t> eviction_matrix_;  // victim-major, n^2
};

/// Owns the per-cache observers of one MultiLevelCache and the shared
/// "which client is accessing right now" cursor the engine advances.
/// Everything here is written from the (serial) replay loop only.
class HierarchyInsight {
 public:
  explicit HierarchyInsight(std::uint32_t num_clients)
      : num_clients_(num_clients) {}

  std::uint32_t num_clients() const { return num_clients_; }
  std::uint32_t current_client() const { return current_client_; }
  void set_current_client(std::uint32_t client) { current_client_ = client; }

  CacheInsight& add_cache(std::string name, int level,
                          std::uint64_t capacity_chunks);

  /// Running per-level totals (for sampled trace counter events).
  std::uint64_t level_misses(int level) const;
  std::uint64_t level_interference(int level) const;

  /// Sums the instances into per-level results with capacity curves.
  InsightResult finalize() const;

 private:
  std::uint32_t num_clients_;
  std::uint32_t current_client_ = 0;
  std::vector<std::unique_ptr<CacheInsight>> caches_;
};

}  // namespace mlsc::obs
