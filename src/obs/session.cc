#include "obs/session.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace mlsc::obs {

ObsScope::ObsScope(std::string trace_path, std::string metrics_path,
                   bool force_metrics)
    : trace_path_(std::move(trace_path)),
      metrics_path_(std::move(metrics_path)) {
  if (!trace_path_.empty()) start_trace(trace_path_);
  if (!metrics_path_.empty() || force_metrics) set_metrics_enabled(true);
}

ObsScope::~ObsScope() {
  if (!trace_path_.empty()) stop_trace();
  if (!metrics_path_.empty()) write_metrics_file(metrics_path_);
}

}  // namespace mlsc::obs
