#include "obs/trace.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <mutex>
#include <ostream>
#include <unordered_set>

#include "obs/metrics.h"
#include "support/obs_hook.h"
#include "support/string_util.h"

namespace mlsc::obs {

namespace {

struct Event {
  std::string name;
  char ph = 'X';  // 'X' complete, 'C' counter, 'M' metadata
  std::int64_t pid = kRealtimePid;
  std::int64_t tid = 0;
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;
  // Values are pre-rendered JSON tokens.
  std::vector<std::pair<std::string, std::string>> args;
};

struct Session {
  std::mutex mutex;
  std::vector<Event> events;
  std::string path;
  std::uint64_t start_ns = 0;  // absolute steady-clock origin
  // Real-time tids that already have a thread_name metadata event.
  std::unordered_set<std::int64_t> named_tids;
};

std::atomic<bool> g_trace_enabled{false};

Session& session() {
  static Session* s = new Session();  // never destroyed
  return *s;
}

/// Small dense ids for application threads on the real-time track.
std::int64_t current_tid() {
  static std::atomic<std::int64_t> next{0};
  thread_local std::int64_t tid = next.fetch_add(1);
  return tid;
}

/// Appends a real-time event, materializing the tid's thread_name
/// metadata on first sight.  Caller supplies session-relative times.
void append_realtime(Session& s, Event event, const std::string& tid_name) {
  std::lock_guard<std::mutex> lock(s.mutex);
  if (s.named_tids.insert(event.tid).second) {
    Event meta;
    meta.name = "thread_name";
    meta.ph = 'M';
    meta.pid = kRealtimePid;
    meta.tid = event.tid;
    meta.args.emplace_back("name", json_quote(tid_name));
    s.events.push_back(std::move(meta));
  }
  s.events.push_back(std::move(event));
}

std::uint64_t relative_ns(const Session& s, std::uint64_t absolute_ns) {
  return absolute_ns > s.start_ns ? absolute_ns - s.start_ns : 0;
}

// --- thread pool observer -------------------------------------------------

void pool_interval(const char* what, const char* counter_name, bool is_chunk,
                   std::size_t thread_index, std::uint64_t start_ns,
                   std::uint64_t end_ns) {
  const std::uint64_t dur = end_ns > start_ns ? end_ns - start_ns : 0;
  if (metrics_enabled()) {
    Registry::global().counter(counter_name).add(dur);
    if (is_chunk) Registry::global().counter("pool.chunks").inc();
  }
  if (!trace_enabled()) return;
  Session& s = session();
  Event event;
  event.name = what;
  event.pid = kRealtimePid;
  event.tid = kPoolTidBase + static_cast<std::int64_t>(thread_index);
  event.ts_ns = relative_ns(s, start_ns);
  event.dur_ns = dur;
  append_realtime(s, std::move(event),
                  "pool thread " + std::to_string(thread_index));
}

void pool_chunk_done(std::size_t thread_index, std::uint64_t start_ns,
                     std::uint64_t end_ns) {
  pool_interval("pool chunk", "pool.busy_ns", /*is_chunk=*/true, thread_index,
                start_ns, end_ns);
}

void pool_idle_done(std::size_t thread_index, std::uint64_t start_ns,
                    std::uint64_t end_ns) {
  pool_interval("pool idle", "pool.idle_ns", /*is_chunk=*/false, thread_index,
                start_ns, end_ns);
}

constexpr detail::PoolObserver kPoolObserver{pool_chunk_done, pool_idle_done};

void write_event(std::ostream& out, const Event& e) {
  char buf[32];
  out << "{\"name\": ";
  write_json_string(out, e.name);
  out << ", \"ph\": \"" << e.ph << "\", \"pid\": " << e.pid
      << ", \"tid\": " << e.tid;
  if (e.ph == 'X' || e.ph == 'C') {
    // trace_event timestamps are microseconds; keep ns precision with a
    // fixed three decimals.
    std::snprintf(buf, sizeof buf, "%llu.%03llu",
                  static_cast<unsigned long long>(e.ts_ns / 1000),
                  static_cast<unsigned long long>(e.ts_ns % 1000));
    out << ", \"ts\": " << buf;
  }
  if (e.ph == 'X') {
    std::snprintf(buf, sizeof buf, "%llu.%03llu",
                  static_cast<unsigned long long>(e.dur_ns / 1000),
                  static_cast<unsigned long long>(e.dur_ns % 1000));
    out << ", \"dur\": " << buf;
  }
  if (!e.args.empty()) {
    out << ", \"args\": {";
    for (std::size_t i = 0; i < e.args.size(); ++i) {
      if (i != 0) out << ", ";
      write_json_string(out, e.args[i].first);
      out << ": " << e.args[i].second;
    }
    out << "}";
  }
  out << "}";
}

}  // namespace

void detail_install_pool_observer() { detail::set_pool_observer(&kPoolObserver); }

bool trace_enabled() {
  return g_trace_enabled.load(std::memory_order_relaxed);
}

void start_trace(const std::string& path) {
  Session& s = session();
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    s.events.clear();
    s.named_tids.clear();
    s.path = path;
    s.start_ns = detail::steady_now_ns();
  }
  detail_install_pool_observer();
  g_trace_enabled.store(true, std::memory_order_relaxed);
  set_process_name(kRealtimePid, "mlsc");
}

std::uint64_t trace_now_ns() {
  if (!trace_enabled()) return 0;
  return relative_ns(session(), detail::steady_now_ns());
}

void write_trace_json(std::ostream& out) {
  Session& s = session();
  std::lock_guard<std::mutex> lock(s.mutex);
  out << "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [";
  for (std::size_t i = 0; i < s.events.size(); ++i) {
    if (i != 0) out << ",";
    out << "\n";
    write_event(out, s.events[i]);
  }
  out << "\n]}\n";
}

bool stop_trace() {
  if (!trace_enabled()) return false;
  g_trace_enabled.store(false, std::memory_order_relaxed);
  Session& s = session();
  std::string path;
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    path = s.path;
  }
  std::ofstream out(path);
  if (!out) {
    std::cerr << "[obs] cannot open " << path << " for writing\n";
    return false;
  }
  write_trace_json(out);
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    s.events.clear();
    s.named_tids.clear();
  }
  return out.good();
}

void emit_complete(std::int64_t pid, std::int64_t tid, std::string name,
                   std::uint64_t ts_ns, std::uint64_t dur_ns,
                   std::vector<std::pair<std::string, std::string>> args) {
  if (!trace_enabled()) return;
  Session& s = session();
  Event event;
  event.name = std::move(name);
  event.pid = pid;
  event.tid = tid;
  event.ts_ns = ts_ns;
  event.dur_ns = dur_ns;
  event.args = std::move(args);
  std::lock_guard<std::mutex> lock(s.mutex);
  s.events.push_back(std::move(event));
}

void emit_counter(std::int64_t pid, std::string name, std::uint64_t ts_ns,
                  std::uint64_t value) {
  if (!trace_enabled()) return;
  Session& s = session();
  Event event;
  event.name = std::move(name);
  event.ph = 'C';
  event.pid = pid;
  event.tid = 0;
  event.ts_ns = ts_ns;
  event.args.emplace_back("value", std::to_string(value));
  std::lock_guard<std::mutex> lock(s.mutex);
  s.events.push_back(std::move(event));
}

void set_process_name(std::int64_t pid, const std::string& name) {
  if (!trace_enabled()) return;
  Session& s = session();
  Event event;
  event.name = "process_name";
  event.ph = 'M';
  event.pid = pid;
  event.args.emplace_back("name", json_quote(name));
  std::lock_guard<std::mutex> lock(s.mutex);
  s.events.push_back(std::move(event));
}

void set_thread_name(std::int64_t pid, std::int64_t tid,
                     const std::string& name) {
  if (!trace_enabled()) return;
  Session& s = session();
  Event event;
  event.name = "thread_name";
  event.ph = 'M';
  event.pid = pid;
  event.tid = tid;
  event.args.emplace_back("name", json_quote(name));
  std::lock_guard<std::mutex> lock(s.mutex);
  s.events.push_back(std::move(event));
}

std::uint32_t client_event_budget() {
  static const std::uint32_t budget = [] {
    const char* env = std::getenv("MLSC_TRACE_CLIENT_EVENTS");
    if (env != nullptr && *env != '\0') {
      const long v = std::strtol(env, nullptr, 10);
      if (v > 0) return static_cast<std::uint32_t>(v);
    }
    return 4096u;
  }();
  return budget;
}

Span::Span(const char* name) : enabled_(trace_enabled()) {
  if (!enabled_) return;
  name_ = name;
  start_ns_ = trace_now_ns();
}

Span::~Span() { end(); }

void Span::end() {
  if (!enabled_ || !trace_enabled()) return;
  enabled_ = false;
  Session& s = session();
  const std::uint64_t end_ns = trace_now_ns();
  const std::int64_t tid = current_tid();
  Event event;
  event.name = name_;
  event.pid = kRealtimePid;
  event.tid = tid;
  event.ts_ns = start_ns_;
  event.dur_ns = end_ns > start_ns_ ? end_ns - start_ns_ : 0;
  event.args = std::move(args_);
  append_realtime(s, std::move(event), "thread " + std::to_string(tid));
}

void Span::arg(const char* key, std::uint64_t value) {
  if (!enabled_) return;
  args_.emplace_back(key, std::to_string(value));
}

void Span::arg(const char* key, double value) {
  if (!enabled_) return;
  args_.emplace_back(key, json_number(value));
}

void Span::arg(const char* key, const std::string& value) {
  if (!enabled_) return;
  args_.emplace_back(key, json_quote(value));
}

}  // namespace mlsc::obs
