// Self-contained HTML rendering of a run record — the engine behind
// `tools/mlsc_report`.
//
// The page bundles everything inline (one <style> block, no scripts, no
// external URLs of any kind) so it can be archived as a CI artifact and
// opened years later.  Sections render from whatever the record has:
// metadata, phase-duration bars, every result table, the metrics
// registry snapshot with the access-latency histogram drawn as bars,
// and — when a Chrome trace document is supplied — per-client I/O stall
// breakdown stacked bars computed from the simulated-client timelines.
#pragma once

#include <string>

#include "support/json.h"

namespace mlsc::obs {

/// Renders the report page.  `record` is a parsed run record
/// (mlsc-run-record-v1 or the legacy bench --json layout); `trace`, when
/// non-null, is a parsed Chrome trace_event document whose simulated
/// client tracks (pid >= kClientPidBase) feed the stall-breakdown
/// section.
std::string render_html_report(const JsonValue& record,
                               const JsonValue* trace = nullptr);

}  // namespace mlsc::obs
