#include "obs/metrics.h"

#include <algorithm>
#include <fstream>
#include <iostream>
#include <ostream>

#include "obs/trace.h"
#include "support/check.h"
#include "support/string_util.h"

namespace mlsc::obs {

namespace {
std::atomic<bool> g_metrics_enabled{false};
}  // namespace

bool metrics_enabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool enabled) {
  if (enabled) detail_install_pool_observer();
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      counts_(new std::atomic<std::uint64_t>[bounds_.size() + 1]) {
  MLSC_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                 std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                     bounds_.end(),
             "histogram bounds must be strictly increasing");
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
}

void Histogram::observe(double value) {
  const std::size_t bucket =
      static_cast<std::size_t>(std::lower_bound(bounds_.begin(), bounds_.end(),
                                                value) -
                               bounds_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
  // fetch_add(double) needs C++20 library support; a CAS loop is portable.
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + value,
                                     std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::bucket_count(std::size_t i) const {
  MLSC_CHECK(i <= bounds_.size(), "histogram bucket out of range");
  return counts_[i].load(std::memory_order_relaxed);
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  total_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

Registry& Registry::global() {
  static Registry* registry = new Registry();  // never destroyed
  return *registry;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

void Registry::write_json(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out << ",";
    first = false;
    out << "\n    ";
    write_json_string(out, name);
    out << ": " << c->value();
  }
  out << (first ? "}" : "\n  }") << ",\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out << ",";
    first = false;
    out << "\n    ";
    write_json_string(out, name);
    out << ": " << json_number(g->value());
  }
  out << (first ? "}" : "\n  }") << ",\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out << ",";
    first = false;
    out << "\n    ";
    write_json_string(out, name);
    out << ": {\"bounds\": [";
    for (std::size_t i = 0; i < h->bounds().size(); ++i) {
      if (i != 0) out << ", ";
      out << json_number(h->bounds()[i]);
    }
    out << "], \"counts\": [";
    for (std::size_t i = 0; i <= h->bounds().size(); ++i) {
      if (i != 0) out << ", ";
      out << h->bucket_count(i);
    }
    out << "], \"count\": " << h->total_count()
        << ", \"sum\": " << json_number(h->sum()) << "}";
  }
  out << (first ? "}" : "\n  }") << "\n}\n";
}

bool write_metrics_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "[obs] cannot open " << path << " for writing\n";
    return false;
  }
  Registry::global().write_json(out);
  return out.good();
}

}  // namespace mlsc::obs
