#include "obs/metrics.h"

#include <algorithm>
#include <fstream>
#include <iostream>
#include <ostream>

#include <cmath>
#include <cstdio>
#include <limits>

#include "obs/trace.h"
#include "support/check.h"
#include "support/stats.h"
#include "support/string_util.h"

namespace mlsc::obs {

namespace {
std::atomic<bool> g_metrics_enabled{false};
}  // namespace

bool metrics_enabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool enabled) {
  if (enabled) detail_install_pool_observer();
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      counts_(new std::atomic<std::uint64_t>[bounds_.size() + 1]) {
  MLSC_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                 std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                     bounds_.end(),
             "histogram bounds must be strictly increasing");
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
}

void Histogram::observe(double value) {
  const std::size_t bucket =
      static_cast<std::size_t>(std::lower_bound(bounds_.begin(), bounds_.end(),
                                                value) -
                               bounds_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
  // fetch_add(double) needs C++20 library support; a CAS loop is portable.
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + value,
                                     std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::bucket_count(std::size_t i) const {
  MLSC_CHECK(i <= bounds_.size(), "histogram bucket out of range");
  return counts_[i].load(std::memory_order_relaxed);
}

double Histogram::quantile(double p) const {
  // Relaxed snapshot: concurrent observes may make the per-bucket counts
  // momentarily inconsistent with total_count(); walk the buckets and
  // derive the total from the same reads instead.
  const std::size_t num_buckets = bounds_.size() + 1;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < num_buckets; ++i) total += bucket_count(i);
  if (total == 0 || bounds_.empty()) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  const double target = quantile_rank(total, p).rank();
  double cum = 0.0;
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    const double count = static_cast<double>(bucket_count(i));
    if (count == 0.0) continue;
    if (target < cum + count) {
      const double lower = i == 0 ? 0.0 : bounds_[i - 1];
      const double frac = std::min((target - cum + 1.0) / count, 1.0);
      return lerp(lower, bounds_[i], frac);
    }
    cum += count;
  }
  return bounds_.back();
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  total_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

Registry& Registry::global() {
  static Registry* registry = new Registry();  // never destroyed
  return *registry;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

void Registry::write_json(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out << ",";
    first = false;
    out << "\n    ";
    write_json_string(out, name);
    out << ": " << c->value();
  }
  out << (first ? "}" : "\n  }") << ",\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out << ",";
    first = false;
    out << "\n    ";
    write_json_string(out, name);
    out << ": " << json_number(g->value());
  }
  out << (first ? "}" : "\n  }") << ",\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out << ",";
    first = false;
    out << "\n    ";
    write_json_string(out, name);
    out << ": {\"bounds\": [";
    for (std::size_t i = 0; i < h->bounds().size(); ++i) {
      if (i != 0) out << ", ";
      out << json_number(h->bounds()[i]);
    }
    out << "], \"counts\": [";
    for (std::size_t i = 0; i <= h->bounds().size(); ++i) {
      if (i != 0) out << ", ";
      out << h->bucket_count(i);
    }
    out << "], \"count\": " << h->total_count()
        << ", \"sum\": " << json_number(h->sum()) << ", \"quantiles\": {"
        << "\"p50\": " << json_number(h->quantile(50.0))
        << ", \"p90\": " << json_number(h->quantile(90.0))
        << ", \"p99\": " << json_number(h->quantile(99.0)) << "}}";
  }
  out << (first ? "}" : "\n  }") << "\n}\n";
}

namespace {

/// Prometheus sample-value rendering: plain decimal, with the text
/// format's NaN/+Inf/-Inf spellings for non-finite values.
std::string prom_number(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

}  // namespace

std::string sanitize_metric_name(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) {
    const bool valid = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(valid ? c : '_');
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) {
    out.insert(out.begin(), '_');
  }
  return out;
}

void Registry::dump_prometheus(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  // Every family gets the text exposition format's full preamble —
  // "# HELP" then "# TYPE" — because some scrapers reject metrics
  // without it.  The help text names the registry's original dotted
  // name, which sanitize_metric_name may have rewritten.
  auto help = [&out](const std::string& prom, const char* family,
                     const std::string& name) {
    out << "# HELP " << prom << " mlsc " << family << " '" << name << "'\n";
  };
  for (const auto& [name, c] : counters_) {
    const std::string prom = sanitize_metric_name(name);
    help(prom, "counter", name);
    out << "# TYPE " << prom << " counter\n"
        << prom << " " << c->value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    const std::string prom = sanitize_metric_name(name);
    help(prom, "gauge", name);
    out << "# TYPE " << prom << " gauge\n"
        << prom << " " << prom_number(g->value()) << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const std::string prom = sanitize_metric_name(name);
    help(prom, "histogram", name);
    out << "# TYPE " << prom << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h->bounds().size(); ++i) {
      cumulative += h->bucket_count(i);
      out << prom << "_bucket{le=\"" << prom_number(h->bounds()[i]) << "\"} "
          << cumulative << "\n";
    }
    out << prom << "_bucket{le=\"+Inf\"} " << h->total_count() << "\n"
        << prom << "_sum " << prom_number(h->sum()) << "\n"
        << prom << "_count " << h->total_count() << "\n";
  }
}

bool write_metrics_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "[obs] cannot open " << path << " for writing\n";
    return false;
  }
  Registry::global().write_json(out);
  return out.good();
}

}  // namespace mlsc::obs
