#include "obs/bench_diff.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <map>
#include <set>

#include "support/string_util.h"

namespace mlsc::obs {

namespace {

std::string lowercase(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

/// Parses a table cell as a number; the whole cell must be numeric.
bool parse_cell(const std::string& cell, double* out) {
  if (cell.empty()) return false;
  char* end = nullptr;
  const double value = std::strtod(cell.c_str(), &end);
  if (end != cell.c_str() + cell.size()) return false;
  *out = value;
  return true;
}

MetricNoise classify(const std::string& name) {
  return is_timing_metric(name) ? MetricNoise::kTiming
                                : MetricNoise::kDeterministic;
}

void flatten_tables(const JsonValue& record, std::vector<FlatMetric>* out) {
  const JsonValue* tables = record.find("tables");
  if (tables == nullptr || !tables->is_array()) return;
  std::size_t table_index = 0;
  for (const JsonValue& table : tables->as_array()) {
    ++table_index;
    const JsonValue* header = table.find("header");
    const JsonValue* rows = table.find("rows");
    if (header == nullptr || rows == nullptr || !header->is_array() ||
        !rows->is_array()) {
      continue;
    }
    std::string title =
        table.find("title") != nullptr ? table.find("title")->string_or("")
                                       : "";
    if (title.empty()) title = "table" + std::to_string(table_index);

    // Row labels: first cell, disambiguated with the second cell when
    // first cells repeat, then with a "#k" suffix.
    const auto& row_array = rows->as_array();
    std::vector<std::string> labels;
    labels.reserve(row_array.size());
    std::map<std::string, std::size_t> first_cell_uses;
    for (const JsonValue& row : row_array) {
      const auto& cells = row.as_array();
      labels.push_back(cells.empty() ? "" : cells[0].string_or(""));
      ++first_cell_uses[labels.back()];
    }
    std::map<std::string, std::size_t> seen;
    for (std::size_t r = 0; r < labels.size(); ++r) {
      const auto& cells = row_array[r].as_array();
      if (first_cell_uses[labels[r]] > 1 && cells.size() >= 2) {
        labels[r] += "/" + cells[1].string_or("");
      }
      const std::size_t k = seen[labels[r]]++;
      if (k > 0) labels[r] += "#" + std::to_string(k);
    }

    const auto& header_cells = header->as_array();
    for (std::size_t r = 0; r < row_array.size(); ++r) {
      const auto& cells = row_array[r].as_array();
      for (std::size_t c = 1; c < cells.size() && c < header_cells.size();
           ++c) {
        double value = 0.0;
        if (!cells[c].is_string() ||
            !parse_cell(cells[c].as_string(), &value)) {
          continue;
        }
        const std::string column = header_cells[c].string_or(
            "col" + std::to_string(c));
        FlatMetric m;
        m.name = "tables." + title + "[" + labels[r] + "]." + column;
        m.value = value;
        m.noise = classify(m.name);
        out->push_back(std::move(m));
      }
    }
  }
}

void flatten_phases(const JsonValue& record, std::vector<FlatMetric>* out) {
  const JsonValue* phases = record.find("phases");
  if (phases == nullptr || !phases->is_array()) return;
  std::map<std::string, std::size_t> seen;
  for (const JsonValue& phase : phases->as_array()) {
    const JsonValue* name = phase.find("name");
    const JsonValue* wall = phase.find("wall_ms");
    if (name == nullptr || wall == nullptr) continue;
    std::string label = name->string_or("");
    const std::size_t k = seen[label]++;
    if (k > 0) label += "#" + std::to_string(k);
    FlatMetric m;
    m.name = "phases." + label + ".wall_ms";
    m.value = wall->number_or(std::numeric_limits<double>::quiet_NaN());
    m.noise = MetricNoise::kTiming;
    out->push_back(std::move(m));
  }
}

void flatten_metrics_section(const JsonValue& record,
                             std::vector<FlatMetric>* out) {
  const JsonValue* metrics = record.find("metrics");
  if (metrics == nullptr || !metrics->is_object()) return;
  const double nan = std::numeric_limits<double>::quiet_NaN();

  for (const char* family : {"counters", "gauges"}) {
    const JsonValue* section = metrics->find(family);
    if (section == nullptr || !section->is_object()) continue;
    for (const auto& [name, value] : section->as_object()) {
      FlatMetric m;
      m.name = std::string(family) + "." + name;
      m.value = value.number_or(nan);
      m.noise = classify(m.name);
      out->push_back(std::move(m));
    }
  }

  const JsonValue* histograms = metrics->find("histograms");
  if (histograms == nullptr || !histograms->is_object()) return;
  for (const auto& [name, hist] : histograms->as_object()) {
    const double count =
        hist.find("count") != nullptr ? hist.find("count")->number_or(nan)
                                      : nan;
    const double sum =
        hist.find("sum") != nullptr ? hist.find("sum")->number_or(nan) : nan;
    const MetricNoise noise = classify(name);
    out->push_back({"histograms." + name + ".count", count,
                    MetricNoise::kDeterministic});
    if (std::isfinite(count) && count > 0.0) {
      out->push_back({"histograms." + name + ".mean", sum / count, noise});
    }
    const JsonValue* quantiles = hist.find("quantiles");
    if (quantiles == nullptr || !quantiles->is_object()) continue;
    for (const auto& [q, value] : quantiles->as_object()) {
      out->push_back(
          {"histograms." + name + "." + q, value.number_or(nan), noise});
    }
  }
}

/// The run record's "insight" section (cache-behavior explanation,
/// DESIGN.md §18): per-level miss classes as insight.<level>.<field>.
/// Everything here is simulated and deterministic; the "insight" name
/// routes the metrics into the guarded set.  The capacity curves and
/// eviction matrices are rendered by mlsc_report, not diffed cell by
/// cell — the scalar class counts already pin the behaviour.
void flatten_insight_section(const JsonValue& record,
                             std::vector<FlatMetric>* out) {
  const JsonValue* insight = record.find("insight");
  if (insight == nullptr || !insight->is_object()) return;
  const JsonValue* levels = insight->find("levels");
  if (levels == nullptr || !levels->is_array()) return;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (const JsonValue& level : levels->as_array()) {
    const JsonValue* name = level.find("level");
    if (name == nullptr || !name->is_string()) continue;
    for (const char* field :
         {"accesses", "hits", "misses", "compulsory", "capacity",
          "interference", "interference_miss_pct"}) {
      const JsonValue* value = level.find(field);
      if (value == nullptr || !value->is_number()) continue;
      out->push_back({"insight." + name->as_string() + "." + field,
                      value->number_or(nan), MetricNoise::kDeterministic});
    }
  }
}

double effective_threshold(MetricNoise noise, const DiffOptions& options,
                           std::size_t repetitions) {
  if (noise == MetricNoise::kDeterministic) return options.det_threshold;
  const double reps = static_cast<double>(std::max<std::size_t>(
      repetitions, 1));
  return options.time_threshold * (1.0 + 1.0 / std::sqrt(reps));
}

const char* verdict_label(Verdict v) {
  switch (v) {
    case Verdict::kOk:
      return "ok";
    case Verdict::kImproved:
      return "improved";
    case Verdict::kSoftRegression:
      return "REGRESSION";
    case Verdict::kHardRegression:
      return "HARD REGRESSION";
    case Verdict::kMissing:
      return "missing";
    case Verdict::kNew:
      return "new";
    case Verdict::kSkipped:
      return "skipped";
  }
  return "?";
}

const char* verdict_color(Verdict v) {
  switch (v) {
    case Verdict::kOk:
      return "";
    case Verdict::kImproved:
      return "\x1b[32m";  // green
    case Verdict::kSoftRegression:
      return "\x1b[33m";  // yellow
    case Verdict::kHardRegression:
      return "\x1b[31m";  // red
    case Verdict::kMissing:
      return "\x1b[35m";  // magenta
    case Verdict::kNew:
      return "\x1b[36m";  // cyan
    case Verdict::kSkipped:
      return "\x1b[2m";  // dim
  }
  return "";
}

}  // namespace

bool is_timing_metric(std::string_view name) {
  const std::string lower = lowercase(name);
  for (const char* needle :
       {"_ms", "_ns", "wall", "time", "latency", "speedup", "busy",
        "idle"}) {
    if (lower.find(needle) != std::string::npos) return true;
  }
  return false;
}

bool is_guarded_metric(std::string_view name) {
  const std::string lower = lowercase(name);
  // reduction_ratio: the similarity graph's pruning guarantee.
  // headroom / io_lower_bound / bytes_moved: the data-movement
  // observatory — the engine replay and the bound are both
  // deterministic, so any drift is a real behaviour change.
  // work_ratio / _pairs: the serve delta-vs-full mapping-work counts
  // (bench_churn) — counted, not timed, so exact.
  // _decisions: the serve policy's decision mix over a fixed script.
  // insight: the cache-behavior explanation (miss classes, interference
  // attribution) — derived from the deterministic replay, so any drift
  // means the classification or the replay itself changed.
  return lower.find("reduction_ratio") != std::string::npos ||
         lower.find("headroom") != std::string::npos ||
         lower.find("io_lower_bound") != std::string::npos ||
         lower.find("bytes_moved") != std::string::npos ||
         lower.find("work_ratio") != std::string::npos ||
         lower.find("_pairs") != std::string::npos ||
         lower.find("_decisions") != std::string::npos ||
         lower.find("insight") != std::string::npos;
}

std::vector<FlatMetric> flatten_run_record(const JsonValue& record) {
  std::vector<FlatMetric> out;
  flatten_tables(record, &out);
  flatten_phases(record, &out);
  flatten_insight_section(record, &out);
  flatten_metrics_section(record, &out);
  return out;
}

std::size_t record_repetitions(const JsonValue& record) {
  const JsonValue* metadata = record.find("metadata");
  if (metadata == nullptr) return 1;
  const JsonValue* reps = metadata->find("repetitions");
  if (reps == nullptr || !reps->is_number()) return 1;
  const double value = reps->as_number();
  return value >= 1.0 ? static_cast<std::size_t>(value) : 1;
}

std::string record_metadata_string(const JsonValue& record,
                                   const std::string& key) {
  const JsonValue* metadata = record.find("metadata");
  if (metadata == nullptr) return "";
  const JsonValue* value = metadata->find(key);
  if (value == nullptr || !value->is_string()) return "";
  return value->as_string();
}

std::string record_build_id(const JsonValue& record) {
  auto field = [&](const char* key) {
    const std::string value = record_metadata_string(record, key);
    return value.empty() ? std::string("?") : value;
  };
  return "git " + field("git_sha") + ", simd " + field("simd_level") +
         ", " + field("build_type");
}

int DiffResult::exit_code() const {
  if (hard_regressions > 0) return 2;
  if (soft_regressions > 0) return 1;
  return 0;
}

DiffResult diff_run_records(const JsonValue& baseline,
                            const JsonValue& current,
                            const DiffOptions& options) {
  const std::vector<FlatMetric> base = flatten_run_record(baseline);
  const std::vector<FlatMetric> cur = flatten_run_record(current);
  const std::size_t repetitions =
      std::min(record_repetitions(baseline), record_repetitions(current));

  std::map<std::string, const FlatMetric*> cur_by_name;
  for (const FlatMetric& m : cur) cur_by_name.emplace(m.name, &m);
  std::set<std::string> base_names;
  for (const FlatMetric& m : base) base_names.insert(m.name);

  DiffResult result;
  for (const FlatMetric& b : base) {
    MetricDelta d;
    d.name = b.name;
    d.baseline = b.value;
    d.noise = b.noise;
    d.threshold = effective_threshold(b.noise, options, repetitions);

    const auto it = cur_by_name.find(b.name);
    if (it == cur_by_name.end()) {
      d.current = std::numeric_limits<double>::quiet_NaN();
      d.verdict = Verdict::kMissing;
      ++result.missing;
      result.deltas.push_back(std::move(d));
      continue;
    }
    d.current = it->second->value;

    if (!std::isfinite(d.baseline) || !std::isfinite(d.current)) {
      d.verdict = Verdict::kSkipped;
      result.deltas.push_back(std::move(d));
      continue;
    }
    ++result.compared;

    if (d.baseline == 0.0) {
      if (d.current == 0.0) {
        d.verdict = Verdict::kOk;
      } else if (b.noise == MetricNoise::kDeterministic) {
        // Any change to a deterministic zero is a behavioural change.
        d.rel_delta = std::numeric_limits<double>::infinity();
        d.verdict = Verdict::kHardRegression;
        ++result.hard_regressions;
      } else {
        d.verdict = Verdict::kSkipped;  // timing ratio undefined
        --result.compared;
      }
      result.deltas.push_back(std::move(d));
      continue;
    }

    d.rel_delta = (d.current - d.baseline) / std::fabs(d.baseline);
    const double magnitude = b.noise == MetricNoise::kTiming
                                 ? d.rel_delta  // only increases regress
                                 : std::fabs(d.rel_delta);
    // Guarded deterministic metrics (reduction_ratio) have no soft
    // band: the pruning guarantees are exact, so any breach is hard.
    const bool guarded = b.noise == MetricNoise::kDeterministic &&
                         is_guarded_metric(b.name);
    if (magnitude > options.hard_factor * d.threshold ||
        (guarded && magnitude > d.threshold)) {
      d.verdict = Verdict::kHardRegression;
      ++result.hard_regressions;
    } else if (magnitude > d.threshold) {
      d.verdict = Verdict::kSoftRegression;
      ++result.soft_regressions;
    } else if (b.noise == MetricNoise::kTiming &&
               d.rel_delta < -d.threshold) {
      d.verdict = Verdict::kImproved;
      ++result.improvements;
    } else {
      d.verdict = Verdict::kOk;
    }
    result.deltas.push_back(std::move(d));
  }

  for (const FlatMetric& c : cur) {
    if (base_names.count(c.name) != 0) continue;
    MetricDelta d;
    d.name = c.name;
    d.baseline = std::numeric_limits<double>::quiet_NaN();
    d.current = c.value;
    d.noise = c.noise;
    d.verdict = Verdict::kNew;
    result.deltas.push_back(std::move(d));
  }
  return result;
}

namespace {

/// Shared "metric:value" parser for the min/max assertion specs.
bool parse_metric_bound(std::string_view spec, std::string* metric,
                        double* bound) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string_view::npos || colon == 0 ||
      colon + 1 >= spec.size()) {
    return false;
  }
  const std::string value(spec.substr(colon + 1));
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (end != value.c_str() + value.size() || !std::isfinite(parsed)) {
    return false;
  }
  *metric = std::string(spec.substr(0, colon));
  *bound = parsed;
  return true;
}

/// Looks `metric` up in the record's flattened metrics; appends a
/// failure line and returns false when absent or non-finite.
bool lookup_metric(const std::map<std::string, double>& by_name,
                   const std::string& metric, const char* what,
                   std::vector<std::string>* failures, double* value) {
  const auto it = by_name.find(metric);
  if (it == by_name.end()) {
    failures->push_back(std::string(what) + ": metric '" + metric +
                        "' not found in record");
    return false;
  }
  if (!std::isfinite(it->second)) {
    failures->push_back(std::string(what) + ": metric '" + metric +
                        "' is not finite");
    return false;
  }
  *value = it->second;
  return true;
}

std::map<std::string, double> metrics_by_name(const JsonValue& record) {
  std::map<std::string, double> by_name;
  for (const FlatMetric& m : flatten_run_record(record)) {
    by_name.emplace(m.name, m.value);
  }
  return by_name;
}

}  // namespace

bool parse_min_assertion(std::string_view spec, MinAssertion* out) {
  return parse_metric_bound(spec, &out->metric, &out->min);
}

bool parse_max_assertion(std::string_view spec, MaxAssertion* out) {
  return parse_metric_bound(spec, &out->metric, &out->max);
}

std::vector<std::string> check_min_assertions(
    const JsonValue& record, const std::vector<MinAssertion>& assertions) {
  const auto by_name = metrics_by_name(record);
  std::vector<std::string> failures;
  for (const MinAssertion& a : assertions) {
    double value = 0.0;
    if (!lookup_metric(by_name, a.metric, "assert-min", &failures, &value)) {
      continue;
    }
    if (value < a.min) {
      failures.push_back("assert-min: " + a.metric + " = " +
                         format_double(value, 4) + " < required " +
                         format_double(a.min, 4));
    }
  }
  return failures;
}

std::vector<std::string> check_max_assertions(
    const JsonValue& record, const std::vector<MaxAssertion>& assertions) {
  const auto by_name = metrics_by_name(record);
  std::vector<std::string> failures;
  for (const MaxAssertion& a : assertions) {
    double value = 0.0;
    if (!lookup_metric(by_name, a.metric, "assert-max", &failures, &value)) {
      continue;
    }
    if (value > a.max) {
      failures.push_back("assert-max: " + a.metric + " = " +
                         format_double(value, 4) + " > allowed " +
                         format_double(a.max, 4));
    }
  }
  return failures;
}

Table diff_table(const DiffResult& result, bool color, bool all) {
  Table table({"metric", "baseline", "current", "delta %", "threshold %",
               "class", "verdict"});
  auto number = [](double v) {
    if (!std::isfinite(v)) return std::string("-");
    return format_double(v, 4);
  };
  for (const MetricDelta& d : result.deltas) {
    const bool interesting = d.verdict != Verdict::kOk;
    if (!all && !interesting) continue;
    std::string verdict = verdict_label(d.verdict);
    if (color) {
      const char* code = verdict_color(d.verdict);
      if (*code != '\0') verdict = code + verdict + "\x1b[0m";
    }
    const bool has_delta = d.verdict != Verdict::kMissing &&
                           d.verdict != Verdict::kNew &&
                           d.verdict != Verdict::kSkipped;
    table.add_row(
        {d.name, number(d.baseline), number(d.current),
         has_delta ? format_double(100.0 * d.rel_delta, 2) : "-",
         has_delta ? format_double(100.0 * d.threshold, 2) : "-",
         d.noise == MetricNoise::kTiming ? "timing" : "det",
         std::move(verdict)});
  }
  return table;
}

}  // namespace mlsc::obs
