// The unified run record: one JSON document bundling everything one
// invocation of a bench binary (or mlsc_map) produced — the printed
// result tables, per-phase wall-clock timings, machine/build metadata,
// and a snapshot of the metrics registry when metrics were enabled.
//
// Run records are the currency of the regression observatory
// (DESIGN.md §13): bench binaries write them via --json, committed
// baselines (BENCH_*.json) are run records, `tools/mlsc_bench_diff`
// compares two of them, and `tools/mlsc_report` renders one as HTML.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "obs/cache_insight.h"
#include "support/table.h"

namespace mlsc::obs {

/// Schema tag written into every record; bump on incompatible changes.
inline constexpr const char* kRunRecordSchema = "mlsc-run-record-v1";

struct RunRecord {
  std::string binary;

  // Metadata: identifies the configuration the numbers came from.
  std::string machine;             // MachineConfig::to_string(), if any
  std::vector<std::string> apps;   // application subset that ran
  std::string build_type;          // CMAKE_BUILD_TYPE
  std::string git_sha;             // commit the binary was built from
  std::string simd_level;          // and_count dispatch: avx2/neon/portable
  unsigned hardware_threads = 0;
  std::size_t repetitions = 1;     // timing repetitions (--reps)
  std::uint64_t seed = 0;          // pinned RNG seed, when the run has one
  bool has_seed = false;

  /// Named wall-clock phases in execution order (milliseconds).
  std::vector<std::pair<std::string, double>> phases;

  /// The printed result tables, in print order, each under a title.
  std::vector<std::pair<std::string, Table>> tables;

  /// Cache-behavior explanation (DESIGN.md §18): written as an
  /// "insight" section when non-empty — per-level miss classes, the
  /// capacity curves and the eviction-attribution matrix.
  InsightResult insight;

  /// Snapshot Registry::global() into a "metrics" section on write.
  bool include_metrics = false;

  void add_phase(std::string name, double wall_ms) {
    phases.emplace_back(std::move(name), wall_ms);
  }

  /// The complete mlsc-run-record-v1 document.
  void write_json(std::ostream& out) const;

  /// write_json to `path`; returns false (and logs to stderr) on I/O
  /// failure.
  bool write_file(const std::string& path) const;
};

/// Measures the enclosing scope and appends it to `record.phases`.
class ScopedPhase {
 public:
  ScopedPhase(RunRecord& record, std::string name)
      : record_(record),
        name_(std::move(name)),
        start_(std::chrono::steady_clock::now()) {}
  ~ScopedPhase() {
    record_.add_phase(
        std::move(name_),
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  RunRecord& record_;
  std::string name_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace mlsc::obs
