// RAII span tracing to Chrome trace_event JSON.
//
// One process-global session: start_trace(path) turns tracing on,
// stop_trace() writes `{"traceEvents": [...]}` to the path — load it in
// chrome://tracing or https://ui.perfetto.dev.  Two kinds of timeline
// coexist:
//
//   - Real time (pid 0, "mlsc"): `Span` measures the enclosing scope on
//     the current OS thread (one tid per thread); the thread pool's
//     chunk/idle intervals land on tids kPoolTidBase+i.  Used for the
//     mapping pipeline phases.
//   - Simulated time (pid kClientPidBase + client): the engine emits
//     explicit intervals with virtual-nanosecond timestamps via
//     emit_complete, one process track per simulated client, capped at
//     client_event_budget() events per client to bound trace size.
//
// Everything is a no-op when tracing is off; constructing a Span then
// costs one relaxed atomic load.  Event buffering takes a mutex per
// event — fine for the span rates here (phases, pool chunks, sampled
// engine intervals), not meant for per-cache-access events.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace mlsc::obs {

/// Real-time track: the host process.
inline constexpr std::int64_t kRealtimePid = 0;
/// Simulated client c gets pid kClientPidBase + c.
inline constexpr std::int64_t kClientPidBase = 1;
/// Thread-pool thread i gets tid kPoolTidBase + i on pid 0 (app threads
/// use small obs-assigned tids).
inline constexpr std::int64_t kPoolTidBase = 1000;

/// True while a trace session is recording.
bool trace_enabled();

/// Starts (or restarts) the global session recording to `path`.
void start_trace(const std::string& path);

/// Stops recording and writes the JSON file.  Returns false when no
/// session was active or the file could not be written.
bool stop_trace();

/// Serializes the buffered events as a complete trace_event JSON
/// document (what stop_trace writes).
void write_trace_json(std::ostream& out);

/// Nanoseconds since the session started (0 when tracing is off).
std::uint64_t trace_now_ns();

/// An explicit complete event ("ph":"X") on an arbitrary pid/tid with
/// caller-supplied timestamps — the engine's virtual timelines.  Args
/// values must be pre-rendered JSON tokens (use json_quote/json_number
/// or raw integers).  No-op when tracing is off.
void emit_complete(
    std::int64_t pid, std::int64_t tid, std::string name, std::uint64_t ts_ns,
    std::uint64_t dur_ns,
    std::vector<std::pair<std::string, std::string>> args = {});

/// A counter event ("ph":"C"): Perfetto renders successive samples of
/// the same (pid, name) as a metric timeline next to the span tracks.
/// The engine samples per-level miss / interference totals onto a
/// dedicated virtual-time pid.  No-op when tracing is off.
void emit_counter(std::int64_t pid, std::string name, std::uint64_t ts_ns,
                  std::uint64_t value);

/// Metadata: names a process / thread track in the viewer.
void set_process_name(std::int64_t pid, const std::string& name);
void set_thread_name(std::int64_t pid, std::int64_t tid,
                     const std::string& name);

/// Per-simulated-client event cap (default 4096; override with the
/// MLSC_TRACE_CLIENT_EVENTS environment variable).
std::uint32_t client_event_budget();

/// Measures the enclosing scope as a complete event on the real-time
/// timeline.  When tracing is off, construction is one atomic load and
/// everything else is skipped.
class Span {
 public:
  explicit Span(const char* name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches "args" shown in the viewer's detail pane.
  void arg(const char* key, std::uint64_t value);
  void arg(const char* key, double value);
  void arg(const char* key, const std::string& value);

  /// Closes the span before the end of scope (the destructor then does
  /// nothing).  Useful when the measured region is a prefix of a scope.
  void end();

 private:
  bool enabled_;
  std::uint64_t start_ns_ = 0;
  const char* name_ = nullptr;
  std::vector<std::pair<std::string, std::string>> args_;
};

/// Installs the support-layer thread pool observer (idempotent).  Called
/// by start_trace and set_metrics_enabled; exposed for the obs internals
/// only.
void detail_install_pool_observer();

}  // namespace mlsc::obs
