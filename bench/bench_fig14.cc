// Figure 14 — sensitivity to the data chunk size: normalized I/O and
// execution latencies of the inter-processor scheme for 16KB..128KB
// chunks.
//
// Paper's trend: smaller chunks mean finer iteration chunks and finer
// clustering, improving the savings (at higher compile time).
#include <chrono>

#include "bench/common.h"

int main(int argc, char** argv) {
  mlsc::bench::parse_common_flags(argc, argv);
  using namespace mlsc;
  const std::vector<std::uint64_t> chunk_sizes = {
      16 * kKiB, 32 * kKiB, 64 * kKiB, 128 * kKiB};
  const auto apps = mlsc::bench::bench_apps(
      {"hf", "sar", "astro", "madbench2", "wupwise"});

  bench::print_header(
      "Figure 14: normalized I/O and execution latency vs data chunk size "
      "(inter-processor, original = 1.0)",
      sim::MachineConfig::paper_default());

  Table table({"chunk size", "I/O latency", "exec time",
               "mapping time (s)"});
  for (std::uint64_t chunk : chunk_sizes) {
    sim::MachineConfig machine = sim::MachineConfig::paper_default();
    machine.chunk_size_bytes = chunk;
    machine.stripe_size_bytes = chunk;  // stripe == chunk, as in Table 1
    double io_sum = 0.0;
    double exec_sum = 0.0;
    double mapping_seconds = 0.0;
    for (const auto& name : apps) {
      const auto workload = workloads::make_workload(name);
      const auto orig =
          bench::run(workload, sim::SchemeSpec::original(), machine);
      const auto start = std::chrono::steady_clock::now();
      const auto inter =
          bench::run(workload, sim::SchemeSpec::inter(), machine);
      mapping_seconds +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      io_sum += static_cast<double>(inter.io_latency) /
                static_cast<double>(orig.io_latency);
      exec_sum += static_cast<double>(inter.exec_time) /
                  static_cast<double>(orig.exec_time);
    }
    const auto n = static_cast<double>(apps.size());
    table.add_row({format_bytes(chunk), format_double(io_sum / n, 3),
                   format_double(exec_sum / n, 3),
                   format_double(mapping_seconds, 1)});
  }
  bench::print_table(table);
  std::cout << "paper trend: smaller chunks improve the savings but "
               "increase compilation (mapping) time — moving 64KB -> 16KB "
               "raised their compile time by >75%\n";
  return 0;
}
