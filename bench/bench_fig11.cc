// Figure 11 — normalized I/O latency and total execution time for the
// intra-processor and inter-processor schemes (original = 1.0).
//
// Paper's headline: average I/O latency improvements of 6.8% (intra) and
// 26.3% (inter); execution time improvements of 3.5% and 18.9%.
#include "bench/common.h"

int main(int argc, char** argv) {
  mlsc::bench::parse_common_flags(argc, argv);
  using namespace mlsc;
  const auto machine = sim::MachineConfig::paper_default();
  bench::print_header(
      "Figure 11: normalized I/O latency and total execution time "
      "(original = 1.0)",
      machine);

  Table table({"app", "intra I/O", "inter I/O", "intra exec", "inter exec"});
  std::vector<double> sums(4, 0.0);
  const auto apps = bench::bench_apps();
  for (const auto& name : apps) {
    const auto workload = workloads::make_workload(name);
    const auto orig =
        bench::run(workload, sim::SchemeSpec::original(), machine);
    const auto intra = bench::run(workload, sim::SchemeSpec::intra(), machine);
    const auto inter = bench::run(workload, sim::SchemeSpec::inter(), machine);
    const double values[4] = {
        static_cast<double>(intra.io_latency) /
            static_cast<double>(orig.io_latency),
        static_cast<double>(inter.io_latency) /
            static_cast<double>(orig.io_latency),
        static_cast<double>(intra.exec_time) /
            static_cast<double>(orig.exec_time),
        static_cast<double>(inter.exec_time) /
            static_cast<double>(orig.exec_time),
    };
    std::vector<double> row(values, values + 4);
    for (int i = 0; i < 4; ++i) sums[i] += values[i];
    table.add_row_numeric(name, row, 3);
  }
  std::vector<double> avg;
  for (double s : sums) avg.push_back(s / static_cast<double>(apps.size()));
  table.add_row_numeric("average", avg, 3);
  bench::print_table(table);

  std::cout << "average improvements: I/O latency intra "
            << format_double((1 - avg[0]) * 100, 1) << "% / inter "
            << format_double((1 - avg[1]) * 100, 1)
            << "% (paper: 6.8% / 26.3%); execution time intra "
            << format_double((1 - avg[2]) * 100, 1) << "% / inter "
            << format_double((1 - avg[3]) * 100, 1)
            << "% (paper: 3.5% / 18.9%)\n";
  return 0;
}
