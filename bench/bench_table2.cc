// Table 2 — application programs: per-app data-set sizes and the
// absolute L1/L2/L3 storage-cache miss rates of the original version
// under the Table 1 default parameters.
#include "bench/common.h"

int main(int argc, char** argv) {
  mlsc::bench::parse_common_flags(argc, argv);
  using namespace mlsc;
  const auto machine = sim::MachineConfig::paper_default();
  bench::print_header("Table 2: application programs, original version",
                      machine);

  Table table({"name", "description", "data (paper scale)", "L1 miss %",
               "L2 miss %", "L3 miss %"});
  for (const auto& name : bench::bench_apps()) {
    const auto workload = workloads::make_workload(name);
    const auto r =
        bench::run(workload, sim::SchemeSpec::original(), machine);
    table.add_row({workload.name, workload.description,
                   format_bytes(workload.simulated_data_bytes() * 64),
                   format_double(r.l1_miss_rate * 100, 1),
                   format_double(r.l2_miss_rate * 100, 1),
                   format_double(r.l3_miss_rate * 100, 1)});
  }
  bench::print_table(table, "table2");
  std::cout << "paper reference rows (miss %%): hf 21.3/40.4/47.9, "
               "sar 16.0/23.3/44.4, contour 15.3/39.3/67.1, astro "
               "28.4/54.4/76.4, e_elem 8.3/33.6/49.9, apsi 17.7/25.4/36.0, "
               "madbench2 20.6/34.7/56.5, wupwise 20.8/36.3/52.8\n";
  return 0;
}
