// Similarity-pipeline benchmark (DESIGN.md §15): sweeps synthetic
// iteration-chunk tables from 8k chunks upward and times the three-stage
// similarity kernel against the exhaustive reference where feasible —
//   graph_ms    inverted-index candidate generation + scoring + freeze
//   exact_ms    the O(n^2) oracle sweep (rows small enough to afford it)
//   cluster_ms  the affinity-forest clustering kernel
//   greedy_ms   the greedy merge oracle (same feasibility cutoff)
//   map_ms      the full hierarchical map end-to-end
// plus the candidate-pair reduction ratio (scored / all pairs — the
// deterministic CI-guarded metric) and the banding variant's pair count.
// A second table reports mapping quality: the engine-simulated cost
// (exec time) of real workloads mapped with the greedy oracle vs the
// forest kernel.
//
// Output: tables on stdout plus BENCH_similarity.json (override with
// --json=<path>).  Extra flags:
//   --max-chunks=N  largest sweep size (default 262144, up to 1048576)
//   --exact-cap=N   run the exact oracle up to N chunks (default 8192)
//   --threads=N     mapping threads, 0 = all cores (default 0)
//   --target=N      clusters per clustering timing run (default 16)
//   --bands=N --rows=N --hot-cap=N   candidate filters for the banded
//                                    column (default 8 bands x 2 rows)
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "bench/common.h"
#include "core/clustering.h"
#include "core/graph.h"
#include "core/mapper.h"
#include "sim/experiment.h"
#include "support/check.h"
#include "support/rng.h"
#include "support/string_util.h"
#include "support/thread_pool.h"
#include "support/units.h"
#include "topology/hierarchy.h"

namespace {

using namespace mlsc;

// Windowed-sharing generator (same locality structure as bench_scaling,
// scaled down in density so posting lists stay bounded as n grows): the
// data space holds 2n chunks, each iteration chunk draws 16 bits from a
// window sliding with its index, so similarity is local and the inverted
// index yields O(1) candidates per row at every n.
std::vector<core::IterationChunk> make_chunks(std::size_t n, Rng& rng) {
  const std::size_t width = 2 * n;
  std::vector<core::IterationChunk> chunks;
  chunks.reserve(n);
  std::uint64_t pos = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t window_lo = i * width / n;
    std::vector<std::uint32_t> bits;
    bits.reserve(16);
    for (int b = 0; b < 16; ++b) {
      bits.push_back(static_cast<std::uint32_t>(
          (window_lo + rng.next_below(std::max<std::size_t>(width / 16, 1))) %
          width));
    }
    core::IterationChunk c;
    c.tag = core::ChunkTag::from_bits(std::move(bits));
    const std::uint64_t len = 20 + rng.next_below(80);
    c.ranges = {poly::LinearRange{pos, pos + len}};
    c.iterations = len;
    pos += len;
    chunks.push_back(std::move(c));
  }
  return chunks;
}

double elapsed_ms(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

std::size_t parse_size_flag(const std::string& arg, const char* name) {
  const std::string value = arg.substr(std::strlen(name));
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  if (value.empty() || end != value.c_str() + value.size()) {
    std::cerr << "error: " << name << " needs a number\n";
    std::exit(2);
  }
  return static_cast<std::size_t>(parsed);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  static char default_json[] = "--json=BENCH_similarity.json";
  bool has_json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) has_json = true;
  }
  if (!has_json) args.push_back(default_json);
  bench::parse_common_flags(static_cast<int>(args.size()), args.data());
  bench::set_record_seed(2010);
  bench::set_record_apps({"synthetic-windowed", "sar", "astro"});
  const std::size_t reps = bench::repetitions();

  std::size_t max_chunks = 262144;
  std::size_t exact_cap = 8192;
  std::size_t threads = 0;
  std::size_t target = 16;
  core::MinhashParams banding{.bands = 8, .rows = 2};
  std::size_t hot_cap = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--max-chunks=", 0) == 0) {
      max_chunks = parse_size_flag(arg, "--max-chunks=");
    } else if (arg.rfind("--exact-cap=", 0) == 0) {
      exact_cap = parse_size_flag(arg, "--exact-cap=");
    } else if (arg.rfind("--threads=", 0) == 0) {
      threads = parse_size_flag(arg, "--threads=");
    } else if (arg.rfind("--target=", 0) == 0) {
      target = parse_size_flag(arg, "--target=");
    } else if (arg.rfind("--bands=", 0) == 0) {
      banding.bands = static_cast<std::uint32_t>(
          parse_size_flag(arg, "--bands="));
    } else if (arg.rfind("--rows=", 0) == 0) {
      banding.rows = static_cast<std::uint32_t>(
          parse_size_flag(arg, "--rows="));
    } else if (arg.rfind("--hot-cap=", 0) == 0) {
      hot_cap = parse_size_flag(arg, "--hot-cap=");
    }
  }
  MLSC_CHECK(max_chunks <= (1u << 20), "--max-chunks tops out at 1048576");

  std::vector<std::size_t> chunk_counts;
  for (const std::size_t n :
       {std::size_t{8192}, std::size_t{32768}, std::size_t{131072},
        std::size_t{262144}, std::size_t{524288}, std::size_t{1048576}}) {
    if (n <= max_chunks) chunk_counts.push_back(n);
  }

  ThreadPool pool(threads);
  ThreadPool* pool_ptr = pool.num_threads() > 1 ? &pool : nullptr;
  const auto tree =
      topology::make_layered_hierarchy(8, 4, 2, 4 * kMiB, 4 * kMiB, 4 * kMiB);

  std::cout << "== similarity: sub-quadratic graph + affinity forest ==\n"
            << "synthetic chunk tables, 2n data chunks, windowed sharing; "
               "times in ms\n"
            << "exact oracle columns up to " << exact_cap
            << " chunks; banded column: " << banding.bands << " bands x "
            << banding.rows << " rows\n\n";

  const auto timed_min = [&](auto&& body) {
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t rep = 0; rep < reps; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      body();
      best = std::min(best, elapsed_ms(t0));
    }
    return best;
  };

  Table table({"chunks", "graph_ms", "exact_ms", "graph_speedup",
               "candidate_pairs", "reduction_ratio", "banded_pairs",
               "cluster_ms", "greedy_ms", "map_ms"});

  for (const std::size_t n : chunk_counts) {
    Rng rng(2010);
    const auto chunks = make_chunks(n, rng);
    const bool feasible = n <= exact_cap;

    // Stage 1+2: candidate generation + scoring.  The graph is built in
    // a nested scope so its CSR is freed before the clustering and map
    // runs; only the stats survive.
    core::GraphStats stats;
    std::size_t num_edges = 0;
    const double graph_ms = timed_min([&] {
      core::GraphOptions options;
      options.pool = pool_ptr;
      const core::ChunkGraph graph(chunks, options);
      stats = graph.stats();
      num_edges = graph.num_edges();
    });

    // Banding variant: same build with the LSH filter on; the surviving
    // pair count is deterministic (SplitMix64, pinned seed).
    core::GraphStats banded_stats;
    timed_min([&] {
      core::GraphOptions options;
      options.pool = pool_ptr;
      options.banding = banding;
      options.hot_posting_cap = hot_cap;
      const core::ChunkGraph graph(chunks, options);
      banded_stats = graph.stats();
    });

    double exact_ms = std::numeric_limits<double>::quiet_NaN();
    if (feasible) {
      exact_ms = timed_min([&] {
        core::GraphOptions options;
        options.pool = pool_ptr;
        options.exact = true;
        const core::ChunkGraph graph(chunks, options);
        MLSC_CHECK(graph.num_edges() == num_edges,
                   "candidate graph lost edges vs the exact sweep");
      });
    }

    // Stage 3: clustering — the forest kernel, and the greedy oracle on
    // feasible rows.
    const double cluster_ms = timed_min([&] {
      auto working = chunks;
      std::vector<std::uint32_t> ids(working.size());
      for (std::uint32_t i = 0; i < ids.size(); ++i) ids[i] = i;
      auto clusters = core::make_singletons(ids, working);
      core::ClusterOptions options;
      options.algorithm = core::ClusterOptions::Algorithm::kForest;
      core::cluster_to_count(clusters, target, working, pool_ptr, options);
    });
    double greedy_ms = std::numeric_limits<double>::quiet_NaN();
    if (feasible) {
      greedy_ms = timed_min([&] {
        auto working = chunks;
        std::vector<std::uint32_t> ids(working.size());
        for (std::uint32_t i = 0; i < ids.size(); ++i) ids[i] = i;
        auto clusters = core::make_singletons(ids, working);
        core::ClusterOptions options;
        options.algorithm = core::ClusterOptions::Algorithm::kGreedy;
        core::cluster_to_count(clusters, target, working, pool_ptr, options);
      });
    }

    // End to end: the full hierarchical map with the forest kernel at
    // every level (kAuto would hand sub-threshold levels to the greedy
    // merge, whose lopsided splits cost the load balancer a move per
    // member — the quadratic path this kernel exists to avoid).
    core::HierarchicalMapperOptions map_options;
    map_options.clustering.algorithm = core::ClusterOptions::Algorithm::kForest;
    map_options.num_threads = threads;
    const core::HierarchicalMapper mapper(tree, map_options);
    std::size_t mapped_clients = 0;
    const double map_ms = timed_min([&] {
      const auto mapping = mapper.map_chunks(chunks);
      mapped_clients = mapping.num_clients();
    });
    MLSC_CHECK(mapped_clients == tree.num_clients(),
               "map lost clients at " << n << " chunks");

    std::cerr << "[bench] chunks=" << n << " graph="
              << format_double(graph_ms, 1) << "ms cluster="
              << format_double(cluster_ms, 1) << "ms map="
              << format_double(map_ms, 1) << "ms pairs="
              << stats.scored_pairs << "/" << stats.total_pairs << "\n";

    const auto opt = [](double v, int digits) {
      return std::isfinite(v) ? format_double(v, digits) : std::string("-");
    };
    table.add_row(
        {std::to_string(n), format_double(graph_ms, 2), opt(exact_ms, 2),
         std::isfinite(exact_ms) && graph_ms > 0.0
             ? format_double(exact_ms / graph_ms, 2)
             : "-",
         std::to_string(stats.scored_pairs),
         format_double(stats.reduction_ratio(), 6),
         std::to_string(banded_stats.scored_pairs),
         format_double(cluster_ms, 2), opt(greedy_ms, 2),
         format_double(map_ms, 2)});
  }
  bench::print_table(table, "similarity");

  // Mapping quality: real workloads through the full engine, mapped with
  // the greedy oracle vs the forest kernel.  The simulated cost (exec
  // time) is deterministic, so the delta is an exact quality statement,
  // not a measurement.
  Table quality({"workload", "greedy_cost", "forest_cost", "cost_ratio",
                 "greedy_l2_miss", "forest_l2_miss"});
  const auto machine = sim::MachineConfig::paper_default();
  for (const std::string& name : {std::string("sar"), std::string("astro")}) {
    const auto workload = workloads::make_workload(name, 1.0);
    sim::SchemeSpec greedy = sim::SchemeSpec::inter();
    greedy.clustering.algorithm = core::ClusterOptions::Algorithm::kGreedy;
    sim::SchemeSpec forest = sim::SchemeSpec::inter();
    forest.clustering.algorithm = core::ClusterOptions::Algorithm::kForest;
    const auto g = bench::run(workload, greedy, machine);
    const auto f = bench::run(workload, forest, machine);
    quality.add_row(
        {name, std::to_string(g.exec_time), std::to_string(f.exec_time),
         g.exec_time > 0
             ? format_double(static_cast<double>(f.exec_time) /
                                 static_cast<double>(g.exec_time),
                             4)
             : "n/a",
         format_double(g.l2_miss_rate, 4), format_double(f.l2_miss_rate, 4)});
  }
  bench::print_table(quality, "forest quality");

  std::cout << "largest sweep size mapped end-to-end: "
            << chunk_counts.back() << " chunks\n";
  return 0;
}
