// Figure 12 — sensitivity to the (clients, I/O nodes, storage nodes)
// topology: normalized I/O and execution latencies of the
// inter-processor scheme under different configurations.
//
// Paper's trend: the benefits grow when either clients-per-I/O-node or
// I/O-nodes-per-storage-node grows (more sharing per cache), and the
// (128,32,16) configuration is the most favourable.
#include "bench/common.h"

int main(int argc, char** argv) {
  mlsc::bench::parse_common_flags(argc, argv);
  using namespace mlsc;
  // (w, x, y) node counts as in the paper's bar chart.
  const std::vector<std::array<std::size_t, 3>> topologies = {
      {64, 32, 16}, {64, 16, 16}, {64, 32, 8},
      {64, 16, 8},  {128, 32, 16},
  };
  // Topology sweeps default to the faster half of the suite so the whole
  // figure regenerates in minutes; set MLSC_BENCH_APPS to override.
  const auto apps = mlsc::bench::bench_apps(
      {"hf", "sar", "astro", "madbench2", "wupwise"});

  bench::print_header(
      "Figure 12: normalized I/O and execution latency vs topology "
      "(inter-processor, original = 1.0)",
      sim::MachineConfig::paper_default());

  Table table({"topology (w,x,y)", "I/O latency", "exec time"});
  for (const auto& [w, x, y] : topologies) {
    sim::MachineConfig machine = sim::MachineConfig::paper_default();
    machine.clients = w;
    machine.io_nodes = x;
    machine.storage_nodes = y;
    double io_sum = 0.0;
    double exec_sum = 0.0;
    for (const auto& name : apps) {
      const auto workload = workloads::make_workload(name);
      const auto orig =
          bench::run(workload, sim::SchemeSpec::original(), machine);
      const auto inter =
          bench::run(workload, sim::SchemeSpec::inter(), machine);
      io_sum += static_cast<double>(inter.io_latency) /
                static_cast<double>(orig.io_latency);
      exec_sum += static_cast<double>(inter.exec_time) /
                  static_cast<double>(orig.exec_time);
    }
    const auto n = static_cast<double>(apps.size());
    table.add_row_numeric("(" + std::to_string(w) + "," + std::to_string(x) +
                              "," + std::to_string(y) + ")",
                          {io_sum / n, exec_sum / n}, 3);
  }
  bench::print_table(table);
  std::cout << "paper trend: improvements grow with w/x and x/y; "
               "(128,32,16) is the best case\n";
  return 0;
}
