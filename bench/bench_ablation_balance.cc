// §4.3 ablation — the balance threshold BThres: tolerated imbalance vs
// cache-affinity freedom.  The paper fixes BThres = 10% for all its
// experiments; this sweep shows the trade-off around that choice.
#include "bench/common.h"

int main(int argc, char** argv) {
  mlsc::bench::parse_common_flags(argc, argv);
  using namespace mlsc;
  const auto machine = sim::MachineConfig::paper_default();
  bench::print_header(
      "Ablation: balance threshold BThres (inter-processor, normalized to "
      "original)",
      machine);

  const std::vector<double> thresholds = {0.0, 0.05, 0.10, 0.20, 0.40};
  const auto apps = mlsc::bench::bench_apps(
      {"hf", "astro", "madbench2", "wupwise"});

  Table table({"BThres", "imbalance", "I/O latency", "exec time"});
  for (double t : thresholds) {
    double io = 0.0;
    double exec = 0.0;
    double imbalance = 0.0;
    for (const auto& name : apps) {
      const auto workload = workloads::make_workload(name);
      const auto orig =
          bench::run(workload, sim::SchemeSpec::original(), machine);
      sim::SchemeSpec spec = sim::SchemeSpec::inter();
      spec.balance_threshold = t;
      const auto inter = bench::run(workload, spec, machine);
      io += static_cast<double>(inter.io_latency) /
            static_cast<double>(orig.io_latency);
      exec += static_cast<double>(inter.exec_time) /
              static_cast<double>(orig.exec_time);
      // Measure the realized imbalance through the engine's totals.
      imbalance += static_cast<double>(inter.engine.io_time_max) /
                   (static_cast<double>(inter.engine.io_time_total) /
                    static_cast<double>(machine.clients));
    }
    const auto n = static_cast<double>(apps.size());
    table.add_row({format_double(t * 100, 0) + "%",
                   format_double(imbalance / n, 3),
                   format_double(io / n, 3), format_double(exec / n, 3)});
  }
  bench::print_table(table);
  std::cout << "paper default: BThres = 10%\n";
  return 0;
}
