// Figure 10 — normalized miss rates for the L1, L2 and L3 caches under
// the intra-processor and inter-processor schemes (original = 1.0).
//
// Paper's headline: intra reduces L1 by 16.2% but barely touches L2/L3
// (2.1%/0.5%); inter reduces all three (15.3%/31.0%/24.6%).
#include "bench/common.h"
#include "support/stats.h"

int main(int argc, char** argv) {
  mlsc::bench::parse_common_flags(argc, argv);
  using namespace mlsc;
  const auto machine = sim::MachineConfig::paper_default();
  bench::print_header(
      "Figure 10: normalized L1/L2/L3 miss rates (original = 1.0)", machine);

  Table table({"app", "intra L1", "intra L2", "intra L3", "inter L1",
               "inter L2", "inter L3"});
  // Local miss *rates* deflate their own denominator when an upper level
  // improves (fewer, colder accesses flow down), so the companion table
  // reports normalized absolute miss *counts* per level — the quantity
  // that actually reaches the next level and the disks.
  Table misses({"app", "intra L1", "intra L2", "intra L3", "inter L1",
                "inter L2", "inter L3"});
  std::vector<double> sums(6, 0.0);
  std::vector<double> miss_sums(6, 0.0);
  const auto apps = bench::bench_apps();
  for (const auto& name : apps) {
    const auto workload = workloads::make_workload(name);
    const auto orig =
        bench::run(workload, sim::SchemeSpec::original(), machine);
    const auto intra = bench::run(workload, sim::SchemeSpec::intra(), machine);
    const auto inter = bench::run(workload, sim::SchemeSpec::inter(), machine);
    const double values[6] = {
        intra.l1_miss_rate / orig.l1_miss_rate,
        intra.l2_miss_rate / orig.l2_miss_rate,
        intra.l3_miss_rate / orig.l3_miss_rate,
        inter.l1_miss_rate / orig.l1_miss_rate,
        inter.l2_miss_rate / orig.l2_miss_rate,
        inter.l3_miss_rate / orig.l3_miss_rate,
    };
    auto ratio = [](std::uint64_t a, std::uint64_t b) {
      return b == 0 ? 1.0 : static_cast<double>(a) / static_cast<double>(b);
    };
    const double miss_values[6] = {
        ratio(intra.engine.l1.misses, orig.engine.l1.misses),
        ratio(intra.engine.l2.misses, orig.engine.l2.misses),
        ratio(intra.engine.l3.misses, orig.engine.l3.misses),
        ratio(inter.engine.l1.misses, orig.engine.l1.misses),
        ratio(inter.engine.l2.misses, orig.engine.l2.misses),
        ratio(inter.engine.l3.misses, orig.engine.l3.misses),
    };
    std::vector<double> row(values, values + 6);
    std::vector<double> miss_row(miss_values, miss_values + 6);
    for (int i = 0; i < 6; ++i) {
      sums[i] += values[i];
      miss_sums[i] += miss_values[i];
    }
    table.add_row_numeric(name, row, 3);
    misses.add_row_numeric(name, miss_row, 3);
  }
  std::vector<double> avg;
  std::vector<double> miss_avg;
  for (double s : sums) avg.push_back(s / static_cast<double>(apps.size()));
  for (double s : miss_sums) {
    miss_avg.push_back(s / static_cast<double>(apps.size()));
  }
  table.add_row_numeric("average", avg, 3);
  misses.add_row_numeric("average", miss_avg, 3);
  std::cout << "normalized local miss rates (misses / accesses at that "
               "level):\n";
  bench::print_table(table);
  std::cout << "normalized absolute miss counts (traffic reaching the next "
               "level):\n";
  bench::print_table(misses);

  std::cout << "average miss-rate reductions: intra "
            << format_double((1 - avg[0]) * 100, 1) << "%/"
            << format_double((1 - avg[1]) * 100, 1) << "%/"
            << format_double((1 - avg[2]) * 100, 1) << "% (paper: "
            << "16.2%/2.1%/0.5%), inter "
            << format_double((1 - avg[3]) * 100, 1) << "%/"
            << format_double((1 - avg[4]) * 100, 1) << "%/"
            << format_double((1 - avg[5]) * 100, 1)
            << "% (paper: 15.3%/31.0%/24.6%)\n";
  return 0;
}
