// §5.4 ablation — handling loops with data dependences: the two
// strategies the paper describes (merge dependent chunks into one
// cluster vs distribute + synchronize) on the dependence-carrying
// applications (apsi and e_elem have cross-sweep flow dependences).
#include "bench/common.h"

int main(int argc, char** argv) {
  mlsc::bench::parse_common_flags(argc, argv);
  using namespace mlsc;
  const auto machine = sim::MachineConfig::paper_default();
  bench::print_header(
      "Ablation: dependence strategies (merge-clusters vs synchronize)",
      machine);

  const auto apps = mlsc::bench::bench_apps({"apsi", "e_elem"});

  Table table({"app", "strategy", "I/O (normalized)", "exec (normalized)",
               "sync wait (s)", "sync edges"});
  for (const auto& name : apps) {
    const auto workload = workloads::make_workload(name);
    const auto orig =
        bench::run(workload, sim::SchemeSpec::original(), machine);
    for (const auto strategy : {core::DependenceStrategy::kMergeClusters,
                                core::DependenceStrategy::kSynchronize}) {
      sim::SchemeSpec spec = sim::SchemeSpec::inter();
      spec.dependences = strategy;
      const auto r = bench::run(workload, spec, machine);
      table.add_row(
          {name, core::dependence_strategy_name(strategy),
           bench::norm(static_cast<double>(r.io_latency),
                       static_cast<double>(orig.io_latency)),
           bench::norm(static_cast<double>(r.exec_time),
                       static_cast<double>(orig.exec_time)),
           format_double(
               static_cast<double>(r.engine.sync_wait_total) / 1e9 /
                   static_cast<double>(machine.clients),
               2),
           std::to_string(r.sync_edges)});
    }
  }
  bench::print_table(table);
  std::cout << "paper: the implementation uses the synchronize strategy; "
               "merging avoids sync at the cost of parallelism\n";
  return 0;
}
