// Churn benchmark for the online mapping service (DESIGN.md §17): how
// much mapping work a single arrival costs against a standing state vs
// the full recompute the offline pipeline would run.
//
// The sweep grows a standing MappingState from distinct-data-key
// instances (cycling the Table 2 workloads with perturbed size factors,
// so every instance owns its own tag-bit range) and, at each standing
// size, times and counts
//   delta:  register one new instance + patch it into the standing cut
//           (scored pairs + forest hooks proportional to the arrival),
//   full:   rebuild_all — re-score every live chunk and recut (what a
//           from-scratch pipeline run would pay).
// work_ratio = full work / delta work is deterministic (counted, not
// timed) and CI-guarded: the 65536-chunk row must stay >= 10x.  The
// second table replays a fixed churn script through MappingService and
// reports the decision mix, pinning the policy's behaviour.
//
// Output: tables on stdout plus BENCH_churn.json (override with
// --json=<path>).  Extra flags:
//   --standing=N    largest standing-chunk sweep point (default 65536)
//   --max-chunks=N  iteration-chunk cap per instance (default 4096)
//   --threads=N     mapping threads, 0 = all cores (default 0)
#include <chrono>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "serve/event.h"
#include "serve/policy.h"
#include "serve/service.h"
#include "serve/state.h"
#include "support/check.h"
#include "support/string_util.h"
#include "support/thread_pool.h"
#include "support/units.h"

namespace {

using namespace mlsc;

double elapsed_ms(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

std::size_t parse_size_flag(const std::string& arg, const char* name) {
  const std::string value = arg.substr(std::strlen(name));
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  if (value.empty() || end != value.c_str() + value.size()) {
    std::cerr << "error: " << name << " needs a number\n";
    std::exit(3);
  }
  return static_cast<std::size_t>(parsed);
}

const char* kNames[] = {"astro", "hf", "sar"};

/// Registers standing instance number `i` (unique data key: perturbed
/// size factor) and patches it in.
void add_standing(serve::MappingState& state, std::size_t i,
                  ThreadPool* pool) {
  serve::DeltaStats stats;
  const std::size_t widx = state.register_workload(
      "standing-" + std::to_string(i), kNames[i % 3],
      0.0625 * (1.0 + static_cast<double>(i) * 1e-6), 2, pool, &stats);
  state.apply_patch(state.build_patch(widx));
}

std::uint64_t work_of(const serve::DeltaStats& stats) {
  return stats.scored_pairs + stats.forest_hooks;
}

/// The fixed churn script behind the decision-mix table: a ramp of
/// arrivals, a burst of departures, a scale-up, and a client fail-stop.
std::vector<serve::ServeEvent> decision_script() {
  using serve::EventKind;
  std::vector<serve::ServeEvent> events;
  auto push = [&](serve::ServeEvent event) {
    event.at = events.size() * kMillisecond;
    events.push_back(std::move(event));
  };
  for (std::size_t i = 0; i < 12; ++i) {
    serve::ServeEvent e;
    e.kind = EventKind::kRegister;
    e.id = "w" + std::to_string(i);
    e.workload = kNames[i % 3];
    e.size_factor = 0.0625 * (1.0 + static_cast<double>(i % 4) * 1e-6);
    e.clients = 2;
    push(e);
  }
  for (const char* id : {"w1", "w4", "w7"}) {
    serve::ServeEvent e;
    e.kind = EventKind::kDepart;
    e.id = id;
    push(e);
  }
  {
    serve::ServeEvent e;
    e.kind = EventKind::kScale;
    e.id = "w0";
    e.clients = 6;
    push(e);
  }
  {
    serve::ServeEvent e;
    e.kind = EventKind::kFault;
    e.fault_spec = "fail@" + std::to_string(events.size() * kMillisecond) +
                   ":l1.3";
    push(e);
  }
  return events;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  static char default_json[] = "--json=BENCH_churn.json";
  bool has_json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) has_json = true;
  }
  if (!has_json) args.push_back(default_json);
  bench::parse_common_flags(static_cast<int>(args.size()), args.data());
  bench::set_record_seed(2026);
  bench::set_record_apps({"astro", "hf", "sar"});

  std::size_t standing_max = 65536;
  std::size_t max_chunks = 4096;
  std::size_t threads = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--standing=", 0) == 0) {
      standing_max = parse_size_flag(arg, "--standing=");
    } else if (arg.rfind("--max-chunks=", 0) == 0) {
      max_chunks = parse_size_flag(arg, "--max-chunks=");
    } else if (arg.rfind("--threads=", 0) == 0) {
      threads = parse_size_flag(arg, "--threads=");
    }
  }

  const auto machine = sim::MachineConfig::paper_default();
  bench::print_header("online churn: delta vs full mapping work", machine);

  serve::ServeStateOptions state_options;
  state_options.tagging.max_iteration_chunks =
      static_cast<std::uint32_t>(max_chunks);
  serve::MappingState state(machine, state_options);
  ThreadPool pool(resolve_num_threads(threads));

  std::vector<std::size_t> sweep;
  for (std::size_t n = 8192; n < standing_max; n *= 4) sweep.push_back(n);
  sweep.push_back(standing_max);

  Table delta_work({"standing", "instances", "delta_pairs", "full_pairs",
                    "work_ratio", "imb_patch", "imb_full", "delta_ms",
                    "full_ms", "delta_speedup"});
  std::size_t next_standing = 0;
  std::size_t next_probe = 0;
  for (const std::size_t target : sweep) {
    while (state.standing_chunks() < target) {
      add_standing(state, next_standing++, &pool);
    }

    // Delta: one arrival with a brand-new data key, patched in.
    serve::DeltaStats delta;
    const auto delta_start = std::chrono::steady_clock::now();
    const std::size_t widx = state.register_workload(
        "probe-" + std::to_string(next_probe), "astro",
        0.0625 * (1.0 + static_cast<double>(100000 + next_probe) * 1e-6), 2,
        &pool,
        &delta);
    ++next_probe;
    state.apply_patch(state.build_patch(widx));
    const double delta_ms = elapsed_ms(delta_start);
    const double imb_patch = state.imbalance();

    // Full: what a from-scratch pipeline pays for the same live set.
    serve::DeltaStats full;
    const auto full_start = std::chrono::steady_clock::now();
    state.rebuild_all(&pool, &full);
    const double full_ms = elapsed_ms(full_start);
    const double imb_full = state.imbalance();
    state.check_invariants();

    const double work_ratio = static_cast<double>(work_of(full)) /
                              static_cast<double>(std::max<std::uint64_t>(
                                  work_of(delta), 1));
    delta_work.add_row(
        {std::to_string(target), std::to_string(state.num_live_workloads()),
         std::to_string(work_of(delta)), std::to_string(work_of(full)),
         format_double(work_ratio, 2), format_double(imb_patch, 4),
         format_double(imb_full, 4), format_double(delta_ms, 2),
         format_double(full_ms, 2),
         format_double(full_ms / std::max(delta_ms, 1e-9), 2)});
    std::cerr << "[bench] standing=" << state.standing_chunks()
              << " delta=" << work_of(delta) << " full=" << work_of(full)
              << " ratio=" << format_double(work_ratio, 1) << "\n";
  }
  bench::print_table(delta_work, "delta_work");

  // Decision mix over the fixed churn script (deterministic: guarded).
  // A small topology so the cut target reaches the client count and all
  // three scopes appear (idle clients pin imbalance above the patch
  // limit on the 64-client paper machine).
  serve::ServiceOptions service_options;
  service_options.machine.clients = 8;
  service_options.machine.io_nodes = 4;
  service_options.machine.storage_nodes = 2;
  service_options.num_threads = threads;
  service_options.state.tagging.max_iteration_chunks =
      static_cast<std::uint32_t>(std::min<std::size_t>(max_chunks, 1024));
  serve::MappingService service(service_options);
  for (const auto& event : decision_script()) service.process(event);
  std::size_t counts[4] = {0, 0, 0, 0};
  for (const auto& decision : service.decisions()) {
    counts[static_cast<std::size_t>(decision.scope)]++;
  }
  Table decisions({"scope", "count"});
  decisions.add_row({"patch", std::to_string(
                                  counts[static_cast<std::size_t>(
                                      serve::RemapScope::kPatch)])});
  decisions.add_row({"partial", std::to_string(
                                    counts[static_cast<std::size_t>(
                                        serve::RemapScope::kPartial)])});
  decisions.add_row({"full", std::to_string(
                                 counts[static_cast<std::size_t>(
                                     serve::RemapScope::kFull)])});
  bench::print_table(decisions, "churn_decisions");

  // Deterministic end-state totals of the scripted run: the modelled
  // remap pause the policy charged and the load imbalance it left.
  Table totals({"metric", "value"});
  totals.add_row({"modelled_pause_us",
                  format_double(static_cast<double>(service.total_pause()) /
                                    static_cast<double>(kMicrosecond),
                                3)});
  totals.add_row({"end_imbalance",
                  format_double(service.state().imbalance(), 6)});
  totals.add_row({"live_workloads",
                  std::to_string(service.state().num_live_workloads())});
  bench::print_table(totals, "churn_totals");

  bench::write_json_output();
  return 0;
}
