// §5.1 ablation — "our approach itself can work with any storage caching
// policy": the inter-processor savings under six replacement policies
// (LRU as in the paper, plus the related-work alternatives) and the
// three placement modes.
#include "bench/common.h"

int main(int argc, char** argv) {
  mlsc::bench::parse_common_flags(argc, argv);
  using namespace mlsc;
  bench::print_header(
      "Ablation: replacement policy and placement mode (inter vs original)",
      sim::MachineConfig::paper_default());

  const std::vector<cache::PolicyKind> policies = {
      cache::PolicyKind::kLru,  cache::PolicyKind::kFifo,
      cache::PolicyKind::kClock, cache::PolicyKind::kLfu,
      cache::PolicyKind::kTwoQ, cache::PolicyKind::kMq,
      cache::PolicyKind::kArc,
  };
  const auto apps = mlsc::bench::bench_apps({"hf", "astro", "madbench2"});

  Table table({"policy", "orig I/O (s)", "inter I/O (s)", "normalized"});
  for (const auto policy : policies) {
    sim::MachineConfig machine = sim::MachineConfig::paper_default();
    machine.policy = policy;
    double orig_io = 0.0;
    double inter_io = 0.0;
    for (const auto& name : apps) {
      const auto workload = workloads::make_workload(name);
      orig_io += static_cast<double>(
          bench::run(workload, sim::SchemeSpec::original(), machine)
              .io_latency);
      inter_io += static_cast<double>(
          bench::run(workload, sim::SchemeSpec::inter(), machine)
              .io_latency);
    }
    table.add_row({cache::policy_kind_name(policy),
                   format_double(orig_io / 1e9, 1),
                   format_double(inter_io / 1e9, 1),
                   format_double(inter_io / orig_io, 3)});
  }
  bench::print_table(table);

  Table placement({"placement", "orig I/O (s)", "inter I/O (s)",
                   "normalized"});
  for (const auto mode :
       {cache::PlacementMode::kAccessBased, cache::PlacementMode::kEvictionBased,
        cache::PlacementMode::kExclusive}) {
    sim::MachineConfig machine = sim::MachineConfig::paper_default();
    machine.placement = mode;
    double orig_io = 0.0;
    double inter_io = 0.0;
    for (const auto& name : apps) {
      const auto workload = workloads::make_workload(name);
      orig_io += static_cast<double>(
          bench::run(workload, sim::SchemeSpec::original(), machine)
              .io_latency);
      inter_io += static_cast<double>(
          bench::run(workload, sim::SchemeSpec::inter(), machine)
              .io_latency);
    }
    placement.add_row({cache::placement_mode_name(mode),
                       format_double(orig_io / 1e9, 1),
                       format_double(inter_io / 1e9, 1),
                       format_double(inter_io / orig_io, 3)});
  }
  bench::print_table(placement);
  std::cout << "claim under test: the mapping's benefit is not tied to the "
               "LRU policy\n";
  return 0;
}
