// Microbenchmarks (google-benchmark) for the library's hot paths: tag
// operations, cache policy cores, the clustering stage and tagging.
//
// Supports the shared bench flag --json=<path> (written in the same
// format as the table/figure binaries) alongside the usual
// --benchmark_* flags.
#include <benchmark/benchmark.h>

#include "bench/common.h"
#include "cache/policy.h"
#include "core/clustering.h"
#include "core/data_space.h"
#include "core/tagging.h"
#include "support/rng.h"
#include "workloads/registry.h"

namespace {

using namespace mlsc;

core::ChunkTag random_tag(Rng& rng, std::size_t bits, std::size_t width) {
  std::vector<std::uint32_t> out;
  for (std::size_t i = 0; i < bits; ++i) {
    out.push_back(static_cast<std::uint32_t>(rng.next_below(width)));
  }
  return core::ChunkTag::from_bits(std::move(out));
}

void BM_ChunkTagCommonBits(benchmark::State& state) {
  Rng rng(1);
  const auto a = random_tag(rng, state.range(0), 100000);
  const auto b = random_tag(rng, state.range(0), 100000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.common_bits(b));
  }
}
BENCHMARK(BM_ChunkTagCommonBits)->Arg(16)->Arg(256)->Arg(4096);

void BM_ClusterTagDot(benchmark::State& state) {
  Rng rng(2);
  core::ClusterTag a;
  core::ClusterTag b;
  for (int i = 0; i < 32; ++i) {
    a.add(random_tag(rng, state.range(0), 100000));
    b.add(random_tag(rng, state.range(0), 100000));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.dot(b));
  }
}
BENCHMARK(BM_ClusterTagDot)->Arg(16)->Arg(256);

void BM_PolicyAccess(benchmark::State& state) {
  const auto kind = static_cast<cache::PolicyKind>(state.range(0));
  auto policy = cache::make_policy(kind, 512);
  Rng rng(3);
  for (auto _ : state) {
    const auto chunk = static_cast<cache::ChunkId>(rng.next_below(2048));
    if (!policy->touch(chunk)) policy->insert(chunk);
  }
}
BENCHMARK(BM_PolicyAccess)
    ->Arg(static_cast<int>(cache::PolicyKind::kLru))
    ->Arg(static_cast<int>(cache::PolicyKind::kFifo))
    ->Arg(static_cast<int>(cache::PolicyKind::kClock))
    ->Arg(static_cast<int>(cache::PolicyKind::kLfu))
    ->Arg(static_cast<int>(cache::PolicyKind::kTwoQ))
    ->Arg(static_cast<int>(cache::PolicyKind::kMq));

void BM_TaggingMadbench(benchmark::State& state) {
  const auto workload = workloads::make_workload("madbench2");
  const core::DataSpace space(workload.program, 64 * kKiB);
  const std::vector<poly::NestId> nests{0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::compute_iteration_chunks(workload.program, space, nests));
  }
}
BENCHMARK(BM_TaggingMadbench)->Unit(benchmark::kMillisecond);

void BM_ClusteringMerge(benchmark::State& state) {
  Rng rng(4);
  std::vector<core::IterationChunk> chunks;
  std::uint64_t pos = 0;
  for (int i = 0; i < state.range(0); ++i) {
    core::IterationChunk c;
    c.tag = random_tag(rng, 24, 4096);
    c.ranges = {poly::LinearRange{pos, pos + 50}};
    c.iterations = 50;
    pos += 50;
    chunks.push_back(std::move(c));
  }
  std::vector<std::uint32_t> ids(chunks.size());
  for (std::uint32_t i = 0; i < ids.size(); ++i) ids[i] = i;
  for (auto _ : state) {
    auto working = chunks;
    auto clusters = core::make_singletons(ids, working);
    core::cluster_to_count(clusters, 16, working);
    benchmark::DoNotOptimize(clusters);
  }
}
BENCHMARK(BM_ClusteringMerge)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);

// Console reporting plus a Table mirror of every run, so --json emits the
// shared bench JSON format instead of google-benchmark's own.
class TableReporter : public benchmark::ConsoleReporter {
 public:
  TableReporter()
      : table_({"name", "iterations", "real_time", "cpu_time", "time_unit"}) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      table_.add_row({run.benchmark_name(), std::to_string(run.iterations),
                      format_double(run.GetAdjustedRealTime(), 3),
                      format_double(run.GetAdjustedCPUTime(), 3),
                      benchmark::GetTimeUnitString(run.time_unit)});
    }
    ConsoleReporter::ReportRuns(runs);
  }

  const Table& table() const { return table_; }

 private:
  Table table_;
};

}  // namespace

int main(int argc, char** argv) {
  mlsc::bench::parse_common_flags(argc, argv);
  // Strip the shared flags before handing argv to google-benchmark, which
  // rejects arguments it does not recognize.
  std::vector<char*> bench_argv;
  for (int i = 0; i < argc; ++i) {
    const std::string arg(argv[i]);
    if (arg.rfind("--json=", 0) == 0 || arg.rfind("--trace=", 0) == 0 ||
        arg.rfind("--metrics=", 0) == 0) {
      continue;
    }
    bench_argv.push_back(argv[i]);
  }
  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_argv.data())) {
    return 1;
  }
  TableReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  mlsc::bench::queue_json_table(reporter.table(), "bench_micro");
  benchmark::Shutdown();
  return 0;
}
