// bench_headroom: per-level data-movement headroom across the registry.
//
// For every Table 2 application, runs the paper's best scheme
// (inter-processor) on the default machine and reports measured bytes
// crossing each cache boundary against the red-blue-pebble I/O lower
// bound (obs/lower_bound.h).  One row per workload, one column triple
// per level, so run records flatten to stable guarded metrics like
//   tables.headroom[sar].l2_headroom_pct
// — the committed BENCH_headroom.json baseline plus the diff tool's
// guarded-metric rule make any headroom drift a hard CI failure.
#include "bench/common.h"

namespace {

using namespace mlsc;

}  // namespace

int main(int argc, char** argv) {
  bench::parse_common_flags(argc, argv);
  const sim::MachineConfig machine = sim::MachineConfig::paper_default();
  bench::print_header("data-movement headroom (% of optimal)", machine);

  Table table({"workload", "l1_bytes_moved", "l1_io_lower_bound",
               "l1_headroom_pct", "l2_bytes_moved", "l2_io_lower_bound",
               "l2_headroom_pct", "l3_bytes_moved", "l3_io_lower_bound",
               "l3_headroom_pct"});
  for (const auto& name : bench::bench_apps()) {
    const auto workload = workloads::make_workload(name);
    const auto result =
        bench::run(workload, sim::SchemeSpec::inter(), machine);
    std::vector<std::string> row{name};
    for (const auto& level : result.movement) {
      row.push_back(std::to_string(level.bytes_moved));
      row.push_back(std::to_string(level.io_lower_bound));
      row.push_back(format_double(level.headroom_pct, 2));
    }
    table.add_row(std::move(row));
  }
  bench::print_table(table, "headroom");
  return 0;
}
