#include "bench/common.h"

#include <cstdlib>

#include "support/string_util.h"
#include "support/units.h"

namespace mlsc::bench {

std::vector<std::string> bench_apps(const std::vector<std::string>& defaults) {
  std::vector<std::string> base =
      defaults.empty() ? workloads::workload_names() : defaults;
  const char* env = std::getenv("MLSC_BENCH_APPS");
  if (env == nullptr || *env == '\0') return base;
  std::vector<std::string> out;
  for (const auto& name : split(env, ',')) {
    for (const auto& known : base) {
      if (known == name) out.push_back(name);
    }
  }
  return out.empty() ? base : out;
}

bool csv_requested() {
  const char* env = std::getenv("MLSC_BENCH_CSV");
  return env != nullptr && *env != '\0' && std::string(env) != "0";
}

void print_header(const std::string& title,
                  const sim::MachineConfig& config) {
  std::cout << "== " << title << " ==\n"
            << "paper: Kandemir et al., Computation Mapping for Multi-Level "
               "Storage Cache Hierarchies, HPDC'10\n"
            << "machine: " << config.to_string() << "\n"
            << "scale: capacities and data sets are 1/64 of the paper's "
               "(DESIGN.md §5); node counts and chunk size are at paper "
               "values\n\n";
}

void print_table(const Table& table) {
  table.print(std::cout);
  if (csv_requested()) {
    std::cout << "\n[csv]\n";
    table.print_csv(std::cout);
  }
  std::cout << "\n";
}

sim::ExperimentResult run(const workloads::Workload& workload,
                          const sim::SchemeSpec& scheme,
                          const sim::MachineConfig& config) {
  std::cerr << "[bench] " << workload.name << " / " << scheme.name() << " / "
            << config.to_string() << "\n";
  return run_experiment(workload, scheme, config);
}

std::string norm(double value, double original) {
  if (original == 0.0) return "n/a";
  return format_double(value / original, 3);
}

}  // namespace mlsc::bench
