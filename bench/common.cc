#include "bench/common.h"

#include <cstdlib>
#include <fstream>
#include <thread>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/check.h"
#include "support/string_util.h"
#include "support/units.h"

#ifndef MLSC_BUILD_TYPE
#define MLSC_BUILD_TYPE "unknown"
#endif

namespace mlsc::bench {

namespace {

struct JsonState {
  std::string binary;
  std::string path;
  std::vector<std::pair<std::string, Table>> tables;
  bool written = false;
  // Run metadata, stashed as the bench binary sets up.
  std::string machine;  // last print_header machine description
  std::vector<std::string> apps;
  // Observability flags.
  std::string metrics_path;
  bool trace_started = false;
};

JsonState& json_state() {
  static JsonState state;
  return state;
}

/// atexit hook: closes the trace session and dumps the metrics registry.
void flush_observability() {
  JsonState& state = json_state();
  if (state.trace_started) {
    mlsc::obs::stop_trace();
    state.trace_started = false;
  }
  if (!state.metrics_path.empty()) {
    mlsc::obs::write_metrics_file(state.metrics_path);
    state.metrics_path.clear();
  }
}

}  // namespace

void parse_common_flags(int argc, char** argv) {
  JsonState& state = json_state();
  if (argc > 0) {
    state.binary = argv[0];
    const std::size_t slash = state.binary.find_last_of('/');
    if (slash != std::string::npos) state.binary = state.binary.substr(slash + 1);
  }
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      state.path = arg.substr(std::string("--json=").size());
      if (state.path.empty()) {
        std::cerr << "error: --json needs a path: --json=<path>\n";
        std::exit(2);
      }
    } else if (arg.rfind("--trace=", 0) == 0) {
      trace_path = arg.substr(std::string("--trace=").size());
      if (trace_path.empty()) {
        std::cerr << "error: --trace needs a path: --trace=<path>\n";
        std::exit(2);
      }
    } else if (arg.rfind("--metrics=", 0) == 0) {
      state.metrics_path = arg.substr(std::string("--metrics=").size());
      if (state.metrics_path.empty()) {
        std::cerr << "error: --metrics needs a path: --metrics=<path>\n";
        std::exit(2);
      }
    }
  }
  if (!state.path.empty()) std::atexit(write_json_output);
  if (!trace_path.empty()) {
    mlsc::obs::start_trace(trace_path);
    state.trace_started = true;
  }
  if (!state.metrics_path.empty()) mlsc::obs::set_metrics_enabled(true);
  if (state.trace_started || !state.metrics_path.empty()) {
    std::atexit(flush_observability);
  }
}

const std::string& json_output_path() { return json_state().path; }

void write_json_output() {
  JsonState& state = json_state();
  if (state.path.empty() || state.written) return;
  std::ofstream out(state.path);
  if (!out) {
    std::cerr << "[bench] cannot open " << state.path << " for writing\n";
    return;
  }
  out << "{\"binary\": ";
  write_json_string(out, state.binary);
  // Run metadata so a saved JSON identifies its own configuration.
  out << ", \"metadata\": {\"machine\": ";
  write_json_string(out, state.machine);
  out << ", \"apps\": [";
  for (std::size_t i = 0; i < state.apps.size(); ++i) {
    if (i != 0) out << ", ";
    write_json_string(out, state.apps[i]);
  }
  out << "], \"hardware_threads\": " << std::thread::hardware_concurrency()
      << ", \"build_type\": ";
  write_json_string(out, MLSC_BUILD_TYPE);
  out << "}, \"tables\": [";
  for (std::size_t i = 0; i < state.tables.size(); ++i) {
    if (i != 0) out << ",";
    out << "\n  ";
    state.tables[i].second.print_json(out, state.tables[i].first);
  }
  out << "\n]}\n";
  state.written = true;
  std::cerr << "[bench] wrote " << state.path << "\n";
}

std::vector<std::string> bench_apps(const std::vector<std::string>& defaults) {
  std::vector<std::string> base =
      defaults.empty() ? workloads::workload_names() : defaults;
  const char* env = std::getenv("MLSC_BENCH_APPS");
  if (env == nullptr || *env == '\0') {
    json_state().apps = base;
    return base;
  }
  std::vector<std::string> out;
  for (const auto& name : split(env, ',')) {
    for (const auto& known : base) {
      if (known == name) out.push_back(name);
    }
  }
  if (out.empty()) out = base;
  json_state().apps = out;
  return out;
}

bool csv_requested() {
  const char* env = std::getenv("MLSC_BENCH_CSV");
  return env != nullptr && *env != '\0' && std::string(env) != "0";
}

void print_header(const std::string& title,
                  const sim::MachineConfig& config) {
  json_state().machine = config.to_string();
  std::cout << "== " << title << " ==\n"
            << "paper: Kandemir et al., Computation Mapping for Multi-Level "
               "Storage Cache Hierarchies, HPDC'10\n"
            << "machine: " << config.to_string() << "\n"
            << "scale: capacities and data sets are 1/64 of the paper's "
               "(DESIGN.md §5); node counts and chunk size are at paper "
               "values\n\n";
}

void print_table(const Table& table, const std::string& title) {
  table.print(std::cout);
  if (csv_requested()) {
    std::cout << "\n[csv]\n";
    table.print_csv(std::cout);
  }
  std::cout << "\n";
  queue_json_table(table, title);
}

void queue_json_table(const Table& table, const std::string& title) {
  JsonState& state = json_state();
  if (!state.path.empty()) state.tables.emplace_back(title, table);
}

sim::ExperimentResult run(const workloads::Workload& workload,
                          const sim::SchemeSpec& scheme,
                          const sim::MachineConfig& config) {
  std::cerr << "[bench] " << workload.name << " / " << scheme.name() << " / "
            << config.to_string() << "\n";
  return run_experiment(workload, scheme, config);
}

std::string norm(double value, double original) {
  if (original == 0.0) return "n/a";
  return format_double(value / original, 3);
}

}  // namespace mlsc::bench
