#include "bench/common.h"

#include <sys/utsname.h>

#include <chrono>
#include <iostream>
#include <cstdlib>
#include <thread>
#include <utility>

#include "obs/metrics.h"
#include "obs/run_record.h"
#include "obs/trace.h"
#include "support/argparse.h"
#include "support/check.h"
#include "support/dynamic_bitset.h"
#include "support/log.h"
#include "support/string_util.h"
#include "support/units.h"

#ifndef MLSC_BUILD_TYPE
#define MLSC_BUILD_TYPE "unknown"
#endif
#ifndef MLSC_GIT_SHA
#define MLSC_GIT_SHA "unknown"
#endif

namespace mlsc::bench {

namespace {

struct JsonState {
  std::string path;
  bool written = false;
  obs::RunRecord record;  // accumulates tables / phases / metadata
  std::size_t repetitions = 1;
  // Observability flags.
  std::string metrics_path;
  bool trace_started = false;
  // Per-level bytes-moved vs. lower-bound rows, one triple per
  // experiment run() executed; written as one "data movement" table so
  // every bench binary's record carries headroom without per-binary
  // plumbing.
  Table movement{{"experiment", "level", "bytes_moved", "io_lower_bound",
                  "headroom_pct"}};
  // With --explain, one row per (experiment, level) of the miss
  // classification; written as one "insight" table on exit.
  bool explain = false;
  Table insight{{"experiment", "level", "misses", "compulsory", "capacity",
                 "interference", "interference_miss_pct"}};
};

JsonState& json_state() {
  static JsonState state;
  return state;
}

/// atexit hook: closes the trace session and dumps the metrics registry.
void flush_observability() {
  JsonState& state = json_state();
  if (state.trace_started) {
    mlsc::obs::stop_trace();
    state.trace_started = false;
  }
  if (!state.metrics_path.empty()) {
    mlsc::obs::write_metrics_file(state.metrics_path);
    state.metrics_path.clear();
  }
}

}  // namespace

void parse_common_flags(int argc, char** argv) {
  JsonState& state = json_state();
  if (argc > 0) {
    state.record.binary = argv[0];
    const std::size_t slash = state.record.binary.find_last_of('/');
    if (slash != std::string::npos) {
      state.record.binary = state.record.binary.substr(slash + 1);
    }
  }
  state.record.build_type = MLSC_BUILD_TYPE;
  state.record.git_sha = MLSC_GIT_SHA;
  state.record.simd_level = DynamicBitset::simd_dispatch_level();
  state.record.hardware_threads = std::thread::hardware_concurrency();
  // Default machine description from uname; benches that print a header
  // overwrite it with the simulated machine config.  This keeps records
  // from headerless benches (bench_scaling, bench_similarity) from
  // carrying an empty "machine" field.
  struct utsname uts{};
  if (uname(&uts) == 0) {
    state.record.machine = std::string(uts.sysname) + " " + uts.release +
                           " " + uts.machine;
  }
  // Shared flag mechanics (support/argparse): --flag=value and
  // "--flag value" both work; anything not a shared flag is left alone
  // for the binary (bench binaries take no other arguments).
  CommonToolOptions common;
  common.accept_reps = true;
  common.accept_explain = true;
  try {
    ArgParser args(argc, argv);
    while (args.next()) {
      if (!common.match(args)) continue;
    }
  } catch (const UsageError& e) {
    std::cerr << "error: " << e.what() << "\n"
              << CommonToolOptions::usage(/*with_reps=*/true,
                                          /*with_explain=*/true);
    std::exit(kUsageExitCode);
  }
  state.explain = common.explain;
  state.path = common.json_path;
  state.metrics_path = common.metrics_path;
  state.repetitions = common.repetitions;
  const std::string trace_path = common.trace_path;
  state.record.repetitions = state.repetitions;
  if (!state.path.empty()) std::atexit(write_json_output);
  if (!trace_path.empty()) {
    mlsc::obs::start_trace(trace_path);
    state.trace_started = true;
  }
  if (!state.metrics_path.empty()) mlsc::obs::set_metrics_enabled(true);
  if (state.trace_started || !state.metrics_path.empty()) {
    std::atexit(flush_observability);
  }
}

const std::string& json_output_path() { return json_state().path; }

std::size_t repetitions() { return json_state().repetitions; }

void set_record_seed(std::uint64_t seed) {
  JsonState& state = json_state();
  state.record.seed = seed;
  state.record.has_seed = true;
}

void set_record_apps(const std::vector<std::string>& apps) {
  json_state().record.apps = apps;
}

void record_phase(const std::string& name, double wall_ms) {
  JsonState& state = json_state();
  if (!state.path.empty()) state.record.add_phase(name, wall_ms);
}

void write_json_output() {
  JsonState& state = json_state();
  if (state.path.empty() || state.written) return;
  if (state.movement.num_rows() > 0) {
    state.record.tables.emplace_back("data movement", state.movement);
  }
  if (state.insight.num_rows() > 0) {
    state.record.tables.emplace_back("insight", state.insight);
  }
  state.record.include_metrics = mlsc::obs::metrics_enabled();
  if (!state.record.write_file(state.path)) return;
  state.written = true;
  std::cerr << "[bench] wrote " << state.path << "\n";
}

std::vector<std::string> bench_apps(const std::vector<std::string>& defaults) {
  std::vector<std::string> base =
      defaults.empty() ? workloads::workload_names() : defaults;
  const char* env = std::getenv("MLSC_BENCH_APPS");
  if (env == nullptr || *env == '\0') {
    json_state().record.apps = base;
    return base;
  }
  std::vector<std::string> out;
  for (const auto& name : split(env, ',')) {
    for (const auto& known : base) {
      if (known == name) out.push_back(name);
    }
  }
  if (out.empty()) out = base;
  json_state().record.apps = out;
  return out;
}

bool csv_requested() {
  const char* env = std::getenv("MLSC_BENCH_CSV");
  return env != nullptr && *env != '\0' && std::string(env) != "0";
}

void print_header(const std::string& title,
                  const sim::MachineConfig& config) {
  json_state().record.machine = config.to_string();
  std::cout << "== " << title << " ==\n"
            << "paper: Kandemir et al., Computation Mapping for Multi-Level "
               "Storage Cache Hierarchies, HPDC'10\n"
            << "machine: " << config.to_string() << "\n"
            << "scale: capacities and data sets are 1/64 of the paper's "
               "(DESIGN.md §5); node counts and chunk size are at paper "
               "values\n\n";
}

void print_table(const Table& table, const std::string& title) {
  table.print(std::cout);
  if (csv_requested()) {
    std::cout << "\n[csv]\n";
    table.print_csv(std::cout);
  }
  std::cout << "\n";
  queue_json_table(table, title);
}

void queue_json_table(const Table& table, const std::string& title) {
  JsonState& state = json_state();
  if (!state.path.empty()) state.record.tables.emplace_back(title, table);
}

sim::ExperimentResult run(const workloads::Workload& workload,
                          const sim::SchemeSpec& scheme,
                          const sim::MachineConfig& config) {
  std::cerr << "[bench] " << workload.name << " / " << scheme.name() << " / "
            << config.to_string() << "\n";
  JsonState& state = json_state();
  sim::MachineConfig effective = config;
  if (state.explain) effective.explain = true;
  const auto start = std::chrono::steady_clock::now();
  auto result = run_experiment(workload, scheme, effective);
  record_phase(workload.name + "/" + scheme.name(),
               std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - start)
                   .count());
  if (!state.path.empty()) {
    for (const auto& row : result.movement) {
      state.movement.add_row(
          {workload.name + "/" + scheme.name(), row.level,
           std::to_string(row.bytes_moved),
           std::to_string(row.io_lower_bound),
           format_double(row.headroom_pct, 2)});
    }
    for (const auto& level : result.engine.insight.levels) {
      state.insight.add_row(
          {workload.name + "/" + scheme.name(), level.level_name(),
           std::to_string(level.misses), std::to_string(level.compulsory),
           std::to_string(level.capacity),
           std::to_string(level.interference),
           format_double(level.interference_miss_pct(), 2)});
    }
  }
  return result;
}

std::string norm(double value, double original) {
  if (original == 0.0) return "n/a";
  return format_double(value / original, 3);
}

}  // namespace mlsc::bench
