// Degraded-mode benchmark: sweeps fault intensity (transient disk-error
// rate layered on top of an L2 fail-stop) and compares three replays of
// each workload:
//
//   healthy    no faults injected
//   no-remap   degraded replay of the healthy mapping (failover +
//              retries only)
//   remap      remap-on-failure: the mapping is recomputed over the
//              surviving topology and the run is charged the remap pause
//
// The headline column is recovery%: how much of the throughput the
// fail-stop costs the no-remap run is won back by remapping,
//   100 * (tp_remap - tp_noremap) / (tp_healthy - tp_noremap),
// reported per (app, intensity) row in the table and hence in the run
// record — measured, never hard-coded.
//
// Output: the standard table on stdout plus a machine-readable JSON run
// record, BENCH_degraded.json by default (override with --json=<path>).
// --size-factor=F scales the data volume for quick smoke runs.
#include <chrono>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "resilience/fault.h"
#include "support/check.h"
#include "support/string_util.h"
#include "workloads/registry.h"

namespace {

using namespace mlsc;

constexpr std::uint64_t kSeed = 2010;

// The fail-stop hits early so most of the run executes degraded; the
// transient error rate is the swept intensity axis.
std::string fault_spec(double disk_error_rate) {
  std::string spec = "fail@2ms:l2.0";
  if (disk_error_rate > 0.0) {
    spec += ";transient@0:disk=" + format_double(disk_error_rate, 4);
  }
  spec += ";seed=" + std::to_string(kSeed);
  return spec;
}

double throughput(const workloads::Workload& workload,
                  const sim::ExperimentResult& result) {
  if (result.exec_time <= 0) return 0.0;
  return static_cast<double>(workload.program.total_iterations()) /
         (static_cast<double>(result.exec_time) * 1e-9);
}

sim::ExperimentResult run_variant(const workloads::Workload& workload,
                                  const sim::SchemeSpec& scheme,
                                  const sim::MachineConfig& config,
                                  const sim::ResilienceSpec* resilience,
                                  const std::string& variant) {
  std::cerr << "[bench] " << workload.name << " / " << variant << "\n";
  const auto start = std::chrono::steady_clock::now();
  auto result = sim::run_experiment(workload, scheme, config, resilience);
  bench::record_phase(workload.name + "/" + variant,
                      std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count());
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  // BENCH_degraded.json is the default output; an explicit --json= wins.
  std::vector<char*> args(argv, argv + argc);
  static char default_json[] = "--json=BENCH_degraded.json";
  bool has_json = false;
  double size_factor = 1.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) has_json = true;
    if (std::strncmp(argv[i], "--size-factor=", 14) == 0) {
      size_factor = std::atof(argv[i] + 14);
      MLSC_CHECK(size_factor > 0.0, "--size-factor must be positive");
    }
  }
  if (!has_json) args.push_back(default_json);
  bench::parse_common_flags(static_cast<int>(args.size()), args.data());
  bench::set_record_seed(kSeed);

  sim::MachineConfig config;
  config.workload_size_factor = size_factor;
  const sim::SchemeSpec scheme = sim::SchemeSpec::inter();

  // Failover detection at multipath-probe scale: the failed node is
  // silent, so every access that reaches it waits out a 50 ms path probe
  // before falling through.  Clients cache no failure state — exactly
  // the pathology that makes remapping worthwhile; the no-remap run
  // keeps dispatching into the timeout for the rest of the run.  (The
  // library default of 100 us models an in-band error return instead.)
  resilience::RetryPolicy retry;
  retry.failover_detect_ns = 50 * kMillisecond;
  const std::vector<double> error_rates = {0.0, 0.01, 0.05};

  bench::print_header("degraded-mode replay: fault-intensity sweep", config);
  std::cout << "faults: L2[0] fail-stop at 2 ms + transient disk errors at "
               "the swept rate (seed "
            << kSeed << ")\n"
            << "tp = loop iterations per second; recovery% = share of the "
               "no-remap throughput loss won back by remap-on-failure\n\n";

  Table table({"app", "disk_err", "tp_healthy", "tp_noremap", "tp_remap",
               "exec_noremap_s", "exec_remap_s", "recovery_pct"});

  for (const auto& app : bench::bench_apps({"sar", "astro"})) {
    const workloads::Workload workload =
        workloads::make_workload(app, size_factor);

    const auto healthy =
        run_variant(workload, scheme, config, nullptr, "healthy");
    const double tp_healthy = throughput(workload, healthy);

    for (const double rate : error_rates) {
      const std::string spec = fault_spec(rate);

      sim::ResilienceSpec no_remap;
      no_remap.schedule = resilience::parse_fault_spec(spec);
      no_remap.retry = retry;
      no_remap.remap.remap_on_failure = false;
      const auto degraded = run_variant(
          workload, scheme, config, &no_remap,
          "no-remap@disk=" + format_double(rate, 2));
      const double tp_noremap = throughput(workload, degraded);

      sim::ResilienceSpec with_remap;
      with_remap.schedule = resilience::parse_fault_spec(spec);
      with_remap.retry = retry;
      with_remap.remap.remap_on_failure = true;
      const auto remapped = run_variant(
          workload, scheme, config, &with_remap,
          "remap@disk=" + format_double(rate, 2));
      MLSC_CHECK(remapped.remapped, "remap-on-failure run did not remap");
      const double tp_remap = throughput(workload, remapped);

      // Recovery is only meaningful when the faults actually cost the
      // no-remap run throughput.
      const double lost = tp_healthy - tp_noremap;
      const std::string recovery =
          lost > 0.0
              ? format_double(100.0 * (tp_remap - tp_noremap) / lost, 1)
              : "n/a";

      table.add_row({app, format_double(rate, 2),
                     format_double(tp_healthy, 0),
                     format_double(tp_noremap, 0), format_double(tp_remap, 0),
                     format_double(degraded.exec_time * 1e-9, 3),
                     format_double(remapped.exec_time * 1e-9, 3), recovery});
    }
  }

  bench::print_table(table, "degraded");
  return 0;
}
