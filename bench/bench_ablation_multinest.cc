// §5.4 ablation — handling multiple loop nests together: compare mapping
// each nest in isolation against mapping the union of all nests'
// iterations at once (the paper reports most data reuse is intra-nest,
// so joint mapping added only ~3% cache hits for their suite; sar's
// producer-consumer passes are where it matters most here).
#include <numeric>

#include "bench/common.h"
#include "core/pipeline.h"
#include "sim/trace.h"

namespace {

/// Runs inter-processor mapping nest-by-nest (isolated) instead of the
/// pipeline's default joint mapping, then replays the concatenation.
mlsc::sim::ExperimentResult run_isolated(
    const mlsc::workloads::Workload& workload,
    const mlsc::sim::MachineConfig& config) {
  using namespace mlsc;
  const auto tree = config.build_tree();
  const core::DataSpace space(workload.program, config.chunk_size_bytes);
  core::PipelineOptions options;
  options.mapper = core::MapperKind::kInterProcessor;
  core::MappingPipeline pipeline(tree, options);

  // Map each nest separately, then concatenate per-client work.
  core::MappingResult combined;
  combined.kind = core::MapperKind::kInterProcessor;
  combined.mapper_name = "inter-processor (isolated nests)";
  combined.client_work.resize(tree.num_clients());
  for (poly::NestId n = 0; n < workload.program.nests.size(); ++n) {
    const std::vector<poly::NestId> one{n};
    auto part = pipeline.run(workload.program, space, one);
    const auto chunk_offset =
        static_cast<std::int32_t>(combined.chunk_table.size());
    for (auto& chunk : part.chunk_table) {
      combined.chunk_table.push_back(std::move(chunk));
    }
    for (std::size_t c = 0; c < tree.num_clients(); ++c) {
      for (auto& item : part.client_work[c]) {
        if (item.chunk >= 0) item.chunk += chunk_offset;
        combined.client_work[c].push_back(std::move(item));
      }
    }
  }

  const auto trace = sim::generate_trace(workload.program, space, combined);
  const auto engine = sim::run_engine(trace, combined, config, tree);
  sim::ExperimentResult result;
  result.workload = workload.name;
  result.scheme = "inter (isolated)";
  result.l1_miss_rate = engine.l1.miss_rate();
  result.l2_miss_rate = engine.l2.miss_rate();
  result.l3_miss_rate = engine.l3.miss_rate();
  result.io_latency = engine.io_time_mean(tree.num_clients());
  result.exec_time = engine.exec_time;
  result.engine = engine;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  mlsc::bench::parse_common_flags(argc, argv);
  using namespace mlsc;
  const auto machine = sim::MachineConfig::paper_default();
  bench::print_header(
      "Ablation: multi-nest mapping (joint vs per-nest isolated)", machine);

  // Apps with more than one nest: sar (two passes over the scene).
  Table table({"app", "variant", "L1 miss %", "I/O latency (s)",
               "exec (s)"});
  for (const auto& name : mlsc::bench::bench_apps({"sar"})) {
    const auto workload = workloads::make_workload(name);
    if (workload.program.nests.size() < 2) continue;
    const auto joint =
        bench::run(workload, sim::SchemeSpec::inter(), machine);
    std::cerr << "[bench] " << name << " / inter (isolated nests)\n";
    const auto isolated = run_isolated(workload, machine);
    table.add_row({name, "joint (paper §5.4)",
                   format_double(joint.l1_miss_rate * 100, 1),
                   format_double(static_cast<double>(joint.io_latency) / 1e9,
                                 1),
                   format_double(static_cast<double>(joint.exec_time) / 1e9,
                                 1)});
    table.add_row(
        {name, "isolated nests",
         format_double(isolated.l1_miss_rate * 100, 1),
         format_double(static_cast<double>(isolated.io_latency) / 1e9, 1),
         format_double(static_cast<double>(isolated.exec_time) / 1e9, 1)});
  }
  bench::print_table(table);
  std::cout << "paper: joint mapping of neighbouring nests added ~3% cache "
               "hits (most reuse is intra-nest)\n";
  return 0;
}
