// Shared harness for the per-table / per-figure benchmark binaries.
//
// Each binary reproduces one table or figure of the paper's evaluation:
// it runs the required (workload, scheme, machine) experiments and prints
// the same rows/series the paper reports, normalized to the original
// version where the paper normalizes.  Environment knobs:
//   MLSC_BENCH_APPS=hf,sar,...   restrict the application list
//   MLSC_BENCH_CSV=1             additionally print CSV blocks
// Command-line flags (parse_common_flags):
//   --json=<path>     also write a run record (mlsc-run-record-v1,
//                     DESIGN.md §13) to <path>: every printed table,
//                     per-experiment wall-clock phases, run metadata
//                     (machine, apps, threads, build type, repetitions,
//                     seed), and a metrics snapshot when --metrics is on
//   --trace=<path>    record a Chrome trace_event timeline of the run
//   --metrics=<path>  dump the metrics registry as JSON on exit
//   --reps=N          timing repetitions for benches that time code
//                     (stamped into the run record for the diff tool's
//                     noise margin; default 1)
//   --explain         attach the cache-insight profiler to every
//                     experiment; with --json the record gains an
//                     "insight" table of per-level miss classes
//                     (DESIGN.md §18)
//   --log-level=L     debug|info|warn|error|off (default warn)
#pragma once

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "sim/experiment.h"
#include "support/string_util.h"
#include "support/table.h"
#include "workloads/registry.h"

namespace mlsc::bench {

/// Applications to run: the full Table 2 suite unless MLSC_BENCH_APPS
/// names a subset, intersected with `defaults` when given.
std::vector<std::string> bench_apps(
    const std::vector<std::string>& defaults = {});

/// True when CSV output was requested.
bool csv_requested();

/// Parses the flags shared by every bench binary (--json=<path>,
/// --trace=<path>, --metrics=<path>).  Unknown arguments are left alone
/// for the binary to interpret.  When --json is given, every table passed
/// to print_table is collected and the whole set is written to <path> on
/// exit (or via write_json_output); --trace/--metrics flush on exit too.
void parse_common_flags(int argc, char** argv);

/// Path given via --json=<path>, or "" when JSON output was not requested.
const std::string& json_output_path();

/// Timing repetitions requested via --reps=N (default 1).
std::size_t repetitions();

/// Stamps the pinned RNG seed into the run record metadata.
void set_record_seed(std::uint64_t seed);

/// Stamps the workload/app names into the run record metadata.  Benches
/// that use bench_apps() get this automatically; synthetic-input benches
/// (bench_scaling, bench_similarity) call it with their generator names
/// so the record's "apps" field is never empty.
void set_record_apps(const std::vector<std::string>& apps);

/// Appends a named wall-clock phase to the run record (no-op without
/// --json).  run() records one phase per experiment automatically.
void record_phase(const std::string& name, double wall_ms);

/// Writes the collected tables to the --json path now (no-op without
/// --json; also runs automatically at exit).
void write_json_output();

/// Queues a table for the JSON document without printing it (no-op when
/// --json was not given).  print_table does this automatically.
void queue_json_table(const Table& table, const std::string& title = "");

/// Prints the standard header: paper reference, machine description, and
/// the simulated scale note.
void print_header(const std::string& title, const sim::MachineConfig& config);

/// Prints a table, plus its CSV form when requested; with --json the table
/// is also queued for the JSON document under `title`.
void print_table(const Table& table, const std::string& title = "");

/// Runs one experiment, with a progress note on stderr.
sim::ExperimentResult run(const workloads::Workload& workload,
                          const sim::SchemeSpec& scheme,
                          const sim::MachineConfig& config);

/// Formats a ratio like the paper's normalized plots (original = 1.0).
std::string norm(double value, double original);

}  // namespace mlsc::bench
