// Shared harness for the per-table / per-figure benchmark binaries.
//
// Each binary reproduces one table or figure of the paper's evaluation:
// it runs the required (workload, scheme, machine) experiments and prints
// the same rows/series the paper reports, normalized to the original
// version where the paper normalizes.  Environment knobs:
//   MLSC_BENCH_APPS=hf,sar,...   restrict the application list
//   MLSC_BENCH_CSV=1             additionally print CSV blocks
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "sim/experiment.h"
#include "support/string_util.h"
#include "support/table.h"
#include "workloads/registry.h"

namespace mlsc::bench {

/// Applications to run: the full Table 2 suite unless MLSC_BENCH_APPS
/// names a subset, intersected with `defaults` when given.
std::vector<std::string> bench_apps(
    const std::vector<std::string>& defaults = {});

/// True when CSV output was requested.
bool csv_requested();

/// Prints the standard header: paper reference, machine description, and
/// the simulated scale note.
void print_header(const std::string& title, const sim::MachineConfig& config);

/// Prints a table, plus its CSV form when requested.
void print_table(const Table& table);

/// Runs one experiment, with a progress note on stderr.
sim::ExperimentResult run(const workloads::Workload& workload,
                          const sim::SchemeSpec& scheme,
                          const sim::MachineConfig& config);

/// Formats a ratio like the paper's normalized plots (original = 1.0).
std::string norm(double value, double original);

}  // namespace mlsc::bench
