// Shared harness for the per-table / per-figure benchmark binaries.
//
// Each binary reproduces one table or figure of the paper's evaluation:
// it runs the required (workload, scheme, machine) experiments and prints
// the same rows/series the paper reports, normalized to the original
// version where the paper normalizes.  Environment knobs:
//   MLSC_BENCH_APPS=hf,sar,...   restrict the application list
//   MLSC_BENCH_CSV=1             additionally print CSV blocks
// Command-line flags (parse_common_flags):
//   --json=<path>     also write every printed table to <path> as one JSON
//                     document (same format across all bench binaries),
//                     stamped with run metadata (machine, apps, threads,
//                     build type)
//   --trace=<path>    record a Chrome trace_event timeline of the run
//   --metrics=<path>  dump the metrics registry as JSON on exit
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "sim/experiment.h"
#include "support/string_util.h"
#include "support/table.h"
#include "workloads/registry.h"

namespace mlsc::bench {

/// Applications to run: the full Table 2 suite unless MLSC_BENCH_APPS
/// names a subset, intersected with `defaults` when given.
std::vector<std::string> bench_apps(
    const std::vector<std::string>& defaults = {});

/// True when CSV output was requested.
bool csv_requested();

/// Parses the flags shared by every bench binary (--json=<path>,
/// --trace=<path>, --metrics=<path>).  Unknown arguments are left alone
/// for the binary to interpret.  When --json is given, every table passed
/// to print_table is collected and the whole set is written to <path> on
/// exit (or via write_json_output); --trace/--metrics flush on exit too.
void parse_common_flags(int argc, char** argv);

/// Path given via --json=<path>, or "" when JSON output was not requested.
const std::string& json_output_path();

/// Writes the collected tables to the --json path now (no-op without
/// --json; also runs automatically at exit).
void write_json_output();

/// Queues a table for the JSON document without printing it (no-op when
/// --json was not given).  print_table does this automatically.
void queue_json_table(const Table& table, const std::string& title = "");

/// Prints the standard header: paper reference, machine description, and
/// the simulated scale note.
void print_header(const std::string& title, const sim::MachineConfig& config);

/// Prints a table, plus its CSV form when requested; with --json the table
/// is also queued for the JSON document under `title`.
void print_table(const Table& table, const std::string& title = "");

/// Runs one experiment, with a progress note on stderr.
sim::ExperimentResult run(const workloads::Workload& workload,
                          const sim::SchemeSpec& scheme,
                          const sim::MachineConfig& config);

/// Formats a ratio like the paper's normalized plots (original = 1.0).
std::string norm(double value, double original);

}  // namespace mlsc::bench
