// §5.4 ablation — the α/β weights of the scheduling algorithm (Fig. 15).
//
// Paper: "giving them equal values generates the best results ... if β
// is too big, the potential locality in the shared caches is missed, and
// if α is too big, L1 locality starts to suffer."
#include "bench/common.h"

int main(int argc, char** argv) {
  mlsc::bench::parse_common_flags(argc, argv);
  using namespace mlsc;
  const auto machine = sim::MachineConfig::paper_default();
  bench::print_header(
      "Ablation: scheduler weights alpha (I/O-level) vs beta "
      "(client-level); normalized to original",
      machine);

  const std::vector<std::pair<double, double>> weights = {
      {1.0, 0.0}, {0.75, 0.25}, {0.5, 0.5}, {0.25, 0.75}, {0.0, 1.0}};
  const auto apps = mlsc::bench::bench_apps(
      {"hf", "contour", "astro", "madbench2"});

  Table table({"alpha", "beta", "L1 miss", "L2 miss", "I/O latency",
               "exec time"});
  for (const auto& [alpha, beta] : weights) {
    double l1 = 0.0;
    double l2 = 0.0;
    double io = 0.0;
    double exec = 0.0;
    for (const auto& name : apps) {
      const auto workload = workloads::make_workload(name);
      const auto orig =
          bench::run(workload, sim::SchemeSpec::original(), machine);
      const auto sched = bench::run(
          workload, sim::SchemeSpec::inter_scheduled(alpha, beta), machine);
      l1 += sched.l1_miss_rate / orig.l1_miss_rate;
      l2 += sched.l2_miss_rate / orig.l2_miss_rate;
      io += static_cast<double>(sched.io_latency) /
            static_cast<double>(orig.io_latency);
      exec += static_cast<double>(sched.exec_time) /
              static_cast<double>(orig.exec_time);
    }
    const auto n = static_cast<double>(apps.size());
    table.add_row({format_double(alpha, 2), format_double(beta, 2),
                   format_double(l1 / n, 3), format_double(l2 / n, 3),
                   format_double(io / n, 3), format_double(exec / n, 3)});
  }
  bench::print_table(table);
  std::cout << "paper: equal weights (0.5/0.5) were best\n";
  return 0;
}
