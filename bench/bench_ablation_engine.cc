// Platform-mechanism ablation: how the mapping's benefit composes with
// the storage-stack mechanisms from the paper's related work — dirty
// write-back accounting, cooperative client caching [14], and sequential
// readahead prefetching ([19][20][38]).
//
// The paper argues the compiler-directed mapping is complementary to
// such mechanisms ("our approach can complement these approaches by
// shaping the data access patterns at the application layer"); this
// bench measures that claim.
#include "bench/common.h"

int main(int argc, char** argv) {
  mlsc::bench::parse_common_flags(argc, argv);
  using namespace mlsc;
  bench::print_header(
      "Ablation: storage-stack mechanisms vs mapping (normalized to the "
      "original scheme on the plain stack)",
      sim::MachineConfig::paper_default());

  const auto apps = mlsc::bench::bench_apps({"hf", "astro", "madbench2"});

  struct Variant {
    const char* label;
    void (*apply)(sim::MachineConfig&);
  };
  const Variant variants[] = {
      {"plain", [](sim::MachineConfig&) {}},
      {"write-back", [](sim::MachineConfig& m) { m.write_back = true; }},
      {"cooperative",
       [](sim::MachineConfig& m) { m.cooperative_caching = true; }},
      {"readahead=2",
       [](sim::MachineConfig& m) { m.readahead_chunks = 2; }},
      {"readahead=4",
       [](sim::MachineConfig& m) { m.readahead_chunks = 4; }},
      {"all",
       [](sim::MachineConfig& m) {
         m.write_back = true;
         m.cooperative_caching = true;
         m.readahead_chunks = 4;
       }},
  };

  // Baseline: original scheme on the plain stack, per app.
  std::vector<double> base_io;
  for (const auto& name : apps) {
    const auto workload = workloads::make_workload(name);
    base_io.push_back(static_cast<double>(
        bench::run(workload, sim::SchemeSpec::original(),
                   sim::MachineConfig::paper_default())
            .io_latency));
  }

  Table table({"stack variant", "original I/O", "inter I/O",
               "mapping benefit %"});
  for (const auto& variant : variants) {
    double orig_sum = 0.0;
    double inter_sum = 0.0;
    for (std::size_t i = 0; i < apps.size(); ++i) {
      sim::MachineConfig machine = sim::MachineConfig::paper_default();
      variant.apply(machine);
      const auto workload = workloads::make_workload(apps[i]);
      orig_sum += static_cast<double>(
                      bench::run(workload, sim::SchemeSpec::original(),
                                 machine)
                          .io_latency) /
                  base_io[i];
      inter_sum += static_cast<double>(
                       bench::run(workload, sim::SchemeSpec::inter(),
                                  machine)
                           .io_latency) /
                   base_io[i];
    }
    const auto n = static_cast<double>(apps.size());
    table.add_row({variant.label, format_double(orig_sum / n, 3),
                   format_double(inter_sum / n, 3),
                   format_double((1.0 - inter_sum / orig_sum) * 100, 1)});
  }
  bench::print_table(table);
  std::cout << "claim under test: the mapping's benefit persists under "
               "every stack mechanism (complementary, not redundant)\n";
  return 0;
}
