// §7 future-work experiment: irregular data access patterns.
//
// The unstructured-mesh edge sweep accesses node records through index
// arrays, so no static (affine) locality transformation applies — the
// intra-processor pass is blind here.  Chunk-level tagging still sees
// the sharing (edges touching the same nodes), so the inter-processor
// mapping effectively graph-partitions the edge list.  The sweep varies
// how shuffled the edge list is.
#include "bench/common.h"
#include "workloads/irregular.h"

int main(int argc, char** argv) {
  mlsc::bench::parse_common_flags(argc, argv);
  using namespace mlsc;
  const auto machine = sim::MachineConfig::paper_default();
  bench::print_header(
      "Future work: irregular access patterns (edge sweep, normalized to "
      "original per shuffle level)",
      machine);

  Table table({"shuffle", "orig disk reqs", "inter disk reqs", "I/O",
               "exec"});
  for (double shuffle : {0.0, 0.2, 0.5, 1.0}) {
    const auto workload = workloads::make_irregular(1.0, shuffle);
    const auto orig =
        bench::run(workload, sim::SchemeSpec::original(), machine);
    const auto inter =
        bench::run(workload, sim::SchemeSpec::inter(), machine);
    table.add_row(
        {format_double(shuffle, 2),
         std::to_string(orig.engine.disk_requests),
         std::to_string(inter.engine.disk_requests),
         bench::norm(static_cast<double>(inter.io_latency),
                     static_cast<double>(orig.io_latency)),
         bench::norm(static_cast<double>(inter.exec_time),
                     static_cast<double>(orig.exec_time))});
  }
  bench::print_table(table);
  std::cout << "expected shape: the mapping's edge shrinks as the list "
               "approaches full shuffle (no structure left to recover)\n";
  return 0;
}
