// Figure 13 — sensitivity to storage cache capacities: normalized I/O
// and execution latencies of the inter-processor scheme with different
// per-node (client, I/O, storage) cache sizes.
//
// Paper's trend: increasing any capacity shrinks the savings (the
// original version benefits more from extra space); halving capacities
// (the (1GB,1GB,1GB) point) boosts the approach.
#include "bench/common.h"

int main(int argc, char** argv) {
  mlsc::bench::parse_common_flags(argc, argv);
  using namespace mlsc;
  // Per-node capacities, at the paper's scale (we divide by 64).
  struct Config {
    const char* label;
    std::uint64_t client_gb, io_gb, storage_gb;
  };
  const std::vector<Config> configs = {
      {"(1GB,1GB,1GB)", 1, 1, 1}, {"(2GB,2GB,2GB)", 2, 2, 2},
      {"(4GB,2GB,2GB)", 4, 2, 2}, {"(2GB,4GB,4GB)", 2, 4, 4},
      {"(4GB,4GB,4GB)", 4, 4, 4},
  };
  const auto apps = mlsc::bench::bench_apps(
      {"hf", "sar", "astro", "madbench2", "wupwise"});

  bench::print_header(
      "Figure 13: normalized I/O and execution latency vs cache capacity "
      "(inter-processor, original = 1.0; labels are paper-scale per-node "
      "capacities, simulated at 1/64)",
      sim::MachineConfig::paper_default());

  Table table({"capacities (W,X,Y)", "I/O latency", "exec time"});
  for (const auto& config : configs) {
    sim::MachineConfig machine = sim::MachineConfig::paper_default();
    machine.client_cache_bytes = config.client_gb * kGiB / 64;
    machine.io_cache_bytes = config.io_gb * kGiB / 64;
    machine.storage_cache_bytes = config.storage_gb * kGiB / 64;
    double io_sum = 0.0;
    double exec_sum = 0.0;
    for (const auto& name : apps) {
      const auto workload = workloads::make_workload(name);
      const auto orig =
          bench::run(workload, sim::SchemeSpec::original(), machine);
      const auto inter =
          bench::run(workload, sim::SchemeSpec::inter(), machine);
      io_sum += static_cast<double>(inter.io_latency) /
                static_cast<double>(orig.io_latency);
      exec_sum += static_cast<double>(inter.exec_time) /
                  static_cast<double>(orig.exec_time);
    }
    const auto n = static_cast<double>(apps.size());
    table.add_row_numeric(config.label, {io_sum / n, exec_sum / n}, 3);
  }
  bench::print_table(table);
  std::cout << "paper trend: larger caches shrink the savings; the "
               "(1GB,1GB,1GB) point boosts them\n";
  return 0;
}
