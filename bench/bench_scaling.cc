// Scaling benchmark for the parallel mapping pipeline: sweeps synthetic
// iteration-chunk tables over (chunk count x thread count) and times the
// three parallel stages — similarity-graph construction, hierarchical
// clustering, and the full map_chunks run — verifying along the way that
// every thread count produces a mapping bit-identical to the serial one.
//
// Output: the standard table on stdout plus a machine-readable JSON file,
// BENCH_scaling.json by default (override with --json=<path>).
#include <algorithm>
#include <chrono>
#include <cstring>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "bench/common.h"
#include "core/clustering.h"
#include "core/graph.h"
#include "core/mapper.h"
#include "support/check.h"
#include "support/rng.h"
#include "support/string_util.h"
#include "support/thread_pool.h"
#include "support/units.h"
#include "topology/hierarchy.h"

namespace {

using namespace mlsc;

// Tags draw their bits from a window that slides across the data space
// with the chunk index, so nearby chunks share many data chunks and
// distant ones share none — the structured locality the clustering stage
// sees in real workloads (and the regime where the inverted index and the
// CSR graph actually have work to do).
std::vector<core::IterationChunk> make_chunks(std::size_t n, std::size_t width,
                                              Rng& rng) {
  std::vector<core::IterationChunk> chunks;
  chunks.reserve(n);
  std::uint64_t pos = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t window_lo = i * width / n;
    std::vector<std::uint32_t> bits;
    bits.reserve(24);
    for (int b = 0; b < 24; ++b) {
      bits.push_back(static_cast<std::uint32_t>(
          (window_lo + rng.next_below(width / 8)) % width));
    }
    core::IterationChunk c;
    c.tag = core::ChunkTag::from_bits(std::move(bits));
    const std::uint64_t len = 20 + rng.next_below(80);
    c.ranges = {poly::LinearRange{pos, pos + len}};
    c.iterations = len;
    pos += len;
    chunks.push_back(std::move(c));
  }
  return chunks;
}

bool equal_mappings(const core::MappingResult& a, const core::MappingResult& b) {
  if (a.client_work.size() != b.client_work.size()) return false;
  for (std::size_t c = 0; c < a.client_work.size(); ++c) {
    const auto& wa = a.client_work[c];
    const auto& wb = b.client_work[c];
    if (wa.size() != wb.size()) return false;
    for (std::size_t i = 0; i < wa.size(); ++i) {
      if (wa[i].nest != wb[i].nest || wa[i].iterations != wb[i].iterations ||
          wa[i].chunk != wb[i].chunk || wa[i].ranges.size() != wb[i].ranges.size()) {
        return false;
      }
      for (std::size_t r = 0; r < wa[i].ranges.size(); ++r) {
        if (wa[i].ranges[r].begin != wb[i].ranges[r].begin ||
            wa[i].ranges[r].end != wb[i].ranges[r].end) {
          return false;
        }
      }
    }
  }
  return true;
}

double elapsed_ms(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  // BENCH_scaling.json is the default output; an explicit --json= wins.
  std::vector<char*> args(argv, argv + argc);
  static char default_json[] = "--json=BENCH_scaling.json";
  bool has_json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) has_json = true;
  }
  if (!has_json) args.push_back(default_json);
  bench::parse_common_flags(static_cast<int>(args.size()), args.data());
  bench::set_record_seed(2010);
  bench::set_record_apps({"synthetic-windowed"});
  const std::size_t reps = bench::repetitions();

  const std::vector<std::size_t> chunk_counts = {1024, 4096, 8192};
  const std::vector<std::size_t> thread_counts = {1, 2, 4};
  const std::size_t width = 4096;  // data chunks in the synthetic space

  const auto tree =
      topology::make_layered_hierarchy(8, 4, 2, 4 * kMiB, 4 * kMiB, 4 * kMiB);

  std::cout << "== scaling: parallel mapping pipeline ==\n"
            << "synthetic chunk tables, " << width
            << " data chunks, windowed sharing; times in ms\n\n";

  Table table({"chunks", "threads", "graph_ms", "cluster_ms", "map_ms",
               "map_speedup", "identical"});
  bool all_identical = true;

  for (const std::size_t n : chunk_counts) {
    Rng rng(2010);
    const auto chunks = make_chunks(n, width, rng);
    core::MappingResult serial_mapping;
    double serial_map_ms = 0.0;

    for (const std::size_t threads : thread_counts) {
      ThreadPool pool(threads);
      ThreadPool* pool_ptr = threads > 1 ? &pool : nullptr;

      // Each stage runs --reps times; the table reports the fastest run
      // (the min is the standard noise-robust statistic for wall clock).
      const auto timed_min = [&](auto&& body) {
        double best = std::numeric_limits<double>::infinity();
        for (std::size_t rep = 0; rep < reps; ++rep) {
          const auto t0 = std::chrono::steady_clock::now();
          body();
          best = std::min(best, elapsed_ms(t0));
        }
        return best;
      };

      std::size_t graph_nodes = 0;
      const double graph_ms = timed_min([&] {
        core::GraphOptions graph_options;
        graph_options.pool = pool_ptr;
        const core::ChunkGraph graph(chunks, graph_options);
        graph_nodes = graph.num_nodes();
      });

      const double cluster_ms = timed_min([&] {
        auto working = chunks;
        std::vector<std::uint32_t> ids(working.size());
        for (std::uint32_t i = 0; i < ids.size(); ++i) ids[i] = i;
        auto clusters = core::make_singletons(ids, working);
        core::cluster_to_count(clusters, 16, working, pool_ptr);
      });

      core::HierarchicalMapperOptions options;
      options.num_threads = threads;
      const core::HierarchicalMapper mapper(tree, options);
      core::MappingResult mapping;
      const double map_ms =
          timed_min([&] { mapping = mapper.map_chunks(chunks); });

      bool identical = true;
      if (threads == 1) {
        serial_mapping = mapping;
        serial_map_ms = map_ms;
      } else {
        identical = equal_mappings(serial_mapping, mapping);
        all_identical = all_identical && identical;
      }

      std::cerr << "[bench] chunks=" << n << " threads=" << threads
                << " graph=" << format_double(graph_ms, 1)
                << "ms cluster=" << format_double(cluster_ms, 1)
                << "ms map=" << format_double(map_ms, 1) << "ms\n";

      table.add_row({std::to_string(n), std::to_string(threads),
                     format_double(graph_ms, 2), format_double(cluster_ms, 2),
                     format_double(map_ms, 2),
                     map_ms > 0.0 ? format_double(serial_map_ms / map_ms, 2)
                                  : "n/a",
                     identical ? "yes" : "NO"});
      MLSC_CHECK(graph_nodes == n, "graph lost nodes");
    }
  }

  bench::print_table(table, "scaling");

  if (!all_identical) {
    std::cerr << "FAILED: a threaded mapping diverged from the serial one\n";
    return 1;
  }
  std::cout << "all threaded mappings bit-identical to serial\n";
  return 0;
}
