// Figure 18 — the local scheduling enhancement (Fig. 15, α = β = 0.5):
// normalized L1 miss rates, I/O latencies and execution times of the
// inter-processor scheme with scheduling, versus without.
//
// Paper's headline: scheduling lifts the average L1 miss reduction to
// 27.8% and the I/O / execution improvements to 30.7% / 21.9%.
#include "bench/common.h"

int main(int argc, char** argv) {
  mlsc::bench::parse_common_flags(argc, argv);
  using namespace mlsc;
  const auto machine = sim::MachineConfig::paper_default();
  bench::print_header(
      "Figure 18: inter-processor + local scheduling (alpha = beta = 0.5, "
      "original = 1.0)",
      machine);

  Table table({"app", "L1 (inter)", "L1 (+sched)", "I/O (inter)",
               "I/O (+sched)", "exec (inter)", "exec (+sched)"});
  std::vector<double> sums(6, 0.0);
  const auto apps = bench::bench_apps();
  for (const auto& name : apps) {
    const auto workload = workloads::make_workload(name);
    const auto orig =
        bench::run(workload, sim::SchemeSpec::original(), machine);
    const auto inter = bench::run(workload, sim::SchemeSpec::inter(), machine);
    const auto sched =
        bench::run(workload, sim::SchemeSpec::inter_scheduled(), machine);
    const double values[6] = {
        inter.l1_miss_rate / orig.l1_miss_rate,
        sched.l1_miss_rate / orig.l1_miss_rate,
        static_cast<double>(inter.io_latency) /
            static_cast<double>(orig.io_latency),
        static_cast<double>(sched.io_latency) /
            static_cast<double>(orig.io_latency),
        static_cast<double>(inter.exec_time) /
            static_cast<double>(orig.exec_time),
        static_cast<double>(sched.exec_time) /
            static_cast<double>(orig.exec_time),
    };
    std::vector<double> row(values, values + 6);
    for (int i = 0; i < 6; ++i) sums[i] += values[i];
    table.add_row_numeric(name, row, 3);
  }
  std::vector<double> avg;
  for (double s : sums) avg.push_back(s / static_cast<double>(apps.size()));
  table.add_row_numeric("average", avg, 3);
  bench::print_table(table);

  std::cout << "with scheduling: L1 miss reduction "
            << format_double((1 - avg[1]) * 100, 1)
            << "% (paper: 27.8%), I/O improvement "
            << format_double((1 - avg[3]) * 100, 1)
            << "% (paper: 30.7%), execution improvement "
            << format_double((1 - avg[5]) * 100, 1) << "% (paper: 21.9%)\n";
  return 0;
}
