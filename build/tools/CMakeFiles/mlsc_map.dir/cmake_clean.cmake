file(REMOVE_RECURSE
  "CMakeFiles/mlsc_map.dir/mlsc_map.cc.o"
  "CMakeFiles/mlsc_map.dir/mlsc_map.cc.o.d"
  "mlsc_map"
  "mlsc_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlsc_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
