# Empty compiler generated dependencies file for mlsc_map.
# This may be replaced when dependencies are built.
