file(REMOVE_RECURSE
  "CMakeFiles/bluegene_mapping.dir/bluegene_mapping.cpp.o"
  "CMakeFiles/bluegene_mapping.dir/bluegene_mapping.cpp.o.d"
  "bluegene_mapping"
  "bluegene_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bluegene_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
