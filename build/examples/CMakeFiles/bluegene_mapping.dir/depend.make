# Empty dependencies file for bluegene_mapping.
# This may be replaced when dependencies are built.
