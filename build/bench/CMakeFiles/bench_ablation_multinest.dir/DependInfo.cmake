
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_multinest.cc" "bench/CMakeFiles/bench_ablation_multinest.dir/bench_ablation_multinest.cc.o" "gcc" "bench/CMakeFiles/bench_ablation_multinest.dir/bench_ablation_multinest.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/mlsc_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mlsc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/mlsc_io.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mlsc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/mlsc_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/mlsc_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/mlsc_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/poly/CMakeFiles/mlsc_poly.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mlsc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
