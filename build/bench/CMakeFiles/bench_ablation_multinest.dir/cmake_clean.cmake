file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_multinest.dir/bench_ablation_multinest.cc.o"
  "CMakeFiles/bench_ablation_multinest.dir/bench_ablation_multinest.cc.o.d"
  "bench_ablation_multinest"
  "bench_ablation_multinest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_multinest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
