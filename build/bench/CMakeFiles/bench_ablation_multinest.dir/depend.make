# Empty dependencies file for bench_ablation_multinest.
# This may be replaced when dependencies are built.
