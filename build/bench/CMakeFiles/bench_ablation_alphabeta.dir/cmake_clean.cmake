file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_alphabeta.dir/bench_ablation_alphabeta.cc.o"
  "CMakeFiles/bench_ablation_alphabeta.dir/bench_ablation_alphabeta.cc.o.d"
  "bench_ablation_alphabeta"
  "bench_ablation_alphabeta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_alphabeta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
