# Empty dependencies file for bench_ablation_alphabeta.
# This may be replaced when dependencies are built.
