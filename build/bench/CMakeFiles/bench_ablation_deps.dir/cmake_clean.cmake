file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_deps.dir/bench_ablation_deps.cc.o"
  "CMakeFiles/bench_ablation_deps.dir/bench_ablation_deps.cc.o.d"
  "bench_ablation_deps"
  "bench_ablation_deps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_deps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
