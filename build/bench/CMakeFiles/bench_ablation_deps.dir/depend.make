# Empty dependencies file for bench_ablation_deps.
# This may be replaced when dependencies are built.
