# Empty dependencies file for mlsc_bench_common.
# This may be replaced when dependencies are built.
