file(REMOVE_RECURSE
  "libmlsc_bench_common.a"
)
