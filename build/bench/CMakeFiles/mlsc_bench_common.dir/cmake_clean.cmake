file(REMOVE_RECURSE
  "CMakeFiles/mlsc_bench_common.dir/common.cc.o"
  "CMakeFiles/mlsc_bench_common.dir/common.cc.o.d"
  "libmlsc_bench_common.a"
  "libmlsc_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlsc_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
