# Empty dependencies file for mlsc_cache.
# This may be replaced when dependencies are built.
