
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/arc.cc" "src/cache/CMakeFiles/mlsc_cache.dir/arc.cc.o" "gcc" "src/cache/CMakeFiles/mlsc_cache.dir/arc.cc.o.d"
  "/root/repo/src/cache/clock.cc" "src/cache/CMakeFiles/mlsc_cache.dir/clock.cc.o" "gcc" "src/cache/CMakeFiles/mlsc_cache.dir/clock.cc.o.d"
  "/root/repo/src/cache/lfu.cc" "src/cache/CMakeFiles/mlsc_cache.dir/lfu.cc.o" "gcc" "src/cache/CMakeFiles/mlsc_cache.dir/lfu.cc.o.d"
  "/root/repo/src/cache/lru.cc" "src/cache/CMakeFiles/mlsc_cache.dir/lru.cc.o" "gcc" "src/cache/CMakeFiles/mlsc_cache.dir/lru.cc.o.d"
  "/root/repo/src/cache/mq.cc" "src/cache/CMakeFiles/mlsc_cache.dir/mq.cc.o" "gcc" "src/cache/CMakeFiles/mlsc_cache.dir/mq.cc.o.d"
  "/root/repo/src/cache/multilevel.cc" "src/cache/CMakeFiles/mlsc_cache.dir/multilevel.cc.o" "gcc" "src/cache/CMakeFiles/mlsc_cache.dir/multilevel.cc.o.d"
  "/root/repo/src/cache/policy.cc" "src/cache/CMakeFiles/mlsc_cache.dir/policy.cc.o" "gcc" "src/cache/CMakeFiles/mlsc_cache.dir/policy.cc.o.d"
  "/root/repo/src/cache/storage_cache.cc" "src/cache/CMakeFiles/mlsc_cache.dir/storage_cache.cc.o" "gcc" "src/cache/CMakeFiles/mlsc_cache.dir/storage_cache.cc.o.d"
  "/root/repo/src/cache/two_q.cc" "src/cache/CMakeFiles/mlsc_cache.dir/two_q.cc.o" "gcc" "src/cache/CMakeFiles/mlsc_cache.dir/two_q.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/mlsc_support.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/mlsc_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
