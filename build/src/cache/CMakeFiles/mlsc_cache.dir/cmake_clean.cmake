file(REMOVE_RECURSE
  "CMakeFiles/mlsc_cache.dir/arc.cc.o"
  "CMakeFiles/mlsc_cache.dir/arc.cc.o.d"
  "CMakeFiles/mlsc_cache.dir/clock.cc.o"
  "CMakeFiles/mlsc_cache.dir/clock.cc.o.d"
  "CMakeFiles/mlsc_cache.dir/lfu.cc.o"
  "CMakeFiles/mlsc_cache.dir/lfu.cc.o.d"
  "CMakeFiles/mlsc_cache.dir/lru.cc.o"
  "CMakeFiles/mlsc_cache.dir/lru.cc.o.d"
  "CMakeFiles/mlsc_cache.dir/mq.cc.o"
  "CMakeFiles/mlsc_cache.dir/mq.cc.o.d"
  "CMakeFiles/mlsc_cache.dir/multilevel.cc.o"
  "CMakeFiles/mlsc_cache.dir/multilevel.cc.o.d"
  "CMakeFiles/mlsc_cache.dir/policy.cc.o"
  "CMakeFiles/mlsc_cache.dir/policy.cc.o.d"
  "CMakeFiles/mlsc_cache.dir/storage_cache.cc.o"
  "CMakeFiles/mlsc_cache.dir/storage_cache.cc.o.d"
  "CMakeFiles/mlsc_cache.dir/two_q.cc.o"
  "CMakeFiles/mlsc_cache.dir/two_q.cc.o.d"
  "libmlsc_cache.a"
  "libmlsc_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlsc_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
