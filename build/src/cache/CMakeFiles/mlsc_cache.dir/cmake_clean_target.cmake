file(REMOVE_RECURSE
  "libmlsc_cache.a"
)
