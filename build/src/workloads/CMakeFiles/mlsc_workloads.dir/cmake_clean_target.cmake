file(REMOVE_RECURSE
  "libmlsc_workloads.a"
)
