# Empty dependencies file for mlsc_workloads.
# This may be replaced when dependencies are built.
