
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/apsi.cc" "src/workloads/CMakeFiles/mlsc_workloads.dir/apsi.cc.o" "gcc" "src/workloads/CMakeFiles/mlsc_workloads.dir/apsi.cc.o.d"
  "/root/repo/src/workloads/astro.cc" "src/workloads/CMakeFiles/mlsc_workloads.dir/astro.cc.o" "gcc" "src/workloads/CMakeFiles/mlsc_workloads.dir/astro.cc.o.d"
  "/root/repo/src/workloads/contour.cc" "src/workloads/CMakeFiles/mlsc_workloads.dir/contour.cc.o" "gcc" "src/workloads/CMakeFiles/mlsc_workloads.dir/contour.cc.o.d"
  "/root/repo/src/workloads/e_elem.cc" "src/workloads/CMakeFiles/mlsc_workloads.dir/e_elem.cc.o" "gcc" "src/workloads/CMakeFiles/mlsc_workloads.dir/e_elem.cc.o.d"
  "/root/repo/src/workloads/hf.cc" "src/workloads/CMakeFiles/mlsc_workloads.dir/hf.cc.o" "gcc" "src/workloads/CMakeFiles/mlsc_workloads.dir/hf.cc.o.d"
  "/root/repo/src/workloads/irregular.cc" "src/workloads/CMakeFiles/mlsc_workloads.dir/irregular.cc.o" "gcc" "src/workloads/CMakeFiles/mlsc_workloads.dir/irregular.cc.o.d"
  "/root/repo/src/workloads/madbench2.cc" "src/workloads/CMakeFiles/mlsc_workloads.dir/madbench2.cc.o" "gcc" "src/workloads/CMakeFiles/mlsc_workloads.dir/madbench2.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/workloads/CMakeFiles/mlsc_workloads.dir/registry.cc.o" "gcc" "src/workloads/CMakeFiles/mlsc_workloads.dir/registry.cc.o.d"
  "/root/repo/src/workloads/sar.cc" "src/workloads/CMakeFiles/mlsc_workloads.dir/sar.cc.o" "gcc" "src/workloads/CMakeFiles/mlsc_workloads.dir/sar.cc.o.d"
  "/root/repo/src/workloads/wupwise.cc" "src/workloads/CMakeFiles/mlsc_workloads.dir/wupwise.cc.o" "gcc" "src/workloads/CMakeFiles/mlsc_workloads.dir/wupwise.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/mlsc_support.dir/DependInfo.cmake"
  "/root/repo/build/src/poly/CMakeFiles/mlsc_poly.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
