file(REMOVE_RECURSE
  "CMakeFiles/mlsc_workloads.dir/apsi.cc.o"
  "CMakeFiles/mlsc_workloads.dir/apsi.cc.o.d"
  "CMakeFiles/mlsc_workloads.dir/astro.cc.o"
  "CMakeFiles/mlsc_workloads.dir/astro.cc.o.d"
  "CMakeFiles/mlsc_workloads.dir/contour.cc.o"
  "CMakeFiles/mlsc_workloads.dir/contour.cc.o.d"
  "CMakeFiles/mlsc_workloads.dir/e_elem.cc.o"
  "CMakeFiles/mlsc_workloads.dir/e_elem.cc.o.d"
  "CMakeFiles/mlsc_workloads.dir/hf.cc.o"
  "CMakeFiles/mlsc_workloads.dir/hf.cc.o.d"
  "CMakeFiles/mlsc_workloads.dir/irregular.cc.o"
  "CMakeFiles/mlsc_workloads.dir/irregular.cc.o.d"
  "CMakeFiles/mlsc_workloads.dir/madbench2.cc.o"
  "CMakeFiles/mlsc_workloads.dir/madbench2.cc.o.d"
  "CMakeFiles/mlsc_workloads.dir/registry.cc.o"
  "CMakeFiles/mlsc_workloads.dir/registry.cc.o.d"
  "CMakeFiles/mlsc_workloads.dir/sar.cc.o"
  "CMakeFiles/mlsc_workloads.dir/sar.cc.o.d"
  "CMakeFiles/mlsc_workloads.dir/wupwise.cc.o"
  "CMakeFiles/mlsc_workloads.dir/wupwise.cc.o.d"
  "libmlsc_workloads.a"
  "libmlsc_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlsc_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
