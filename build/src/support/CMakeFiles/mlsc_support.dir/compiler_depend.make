# Empty compiler generated dependencies file for mlsc_support.
# This may be replaced when dependencies are built.
