
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/support/check.cc" "src/support/CMakeFiles/mlsc_support.dir/check.cc.o" "gcc" "src/support/CMakeFiles/mlsc_support.dir/check.cc.o.d"
  "/root/repo/src/support/dynamic_bitset.cc" "src/support/CMakeFiles/mlsc_support.dir/dynamic_bitset.cc.o" "gcc" "src/support/CMakeFiles/mlsc_support.dir/dynamic_bitset.cc.o.d"
  "/root/repo/src/support/log.cc" "src/support/CMakeFiles/mlsc_support.dir/log.cc.o" "gcc" "src/support/CMakeFiles/mlsc_support.dir/log.cc.o.d"
  "/root/repo/src/support/stats.cc" "src/support/CMakeFiles/mlsc_support.dir/stats.cc.o" "gcc" "src/support/CMakeFiles/mlsc_support.dir/stats.cc.o.d"
  "/root/repo/src/support/string_util.cc" "src/support/CMakeFiles/mlsc_support.dir/string_util.cc.o" "gcc" "src/support/CMakeFiles/mlsc_support.dir/string_util.cc.o.d"
  "/root/repo/src/support/table.cc" "src/support/CMakeFiles/mlsc_support.dir/table.cc.o" "gcc" "src/support/CMakeFiles/mlsc_support.dir/table.cc.o.d"
  "/root/repo/src/support/units.cc" "src/support/CMakeFiles/mlsc_support.dir/units.cc.o" "gcc" "src/support/CMakeFiles/mlsc_support.dir/units.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
