file(REMOVE_RECURSE
  "CMakeFiles/mlsc_support.dir/check.cc.o"
  "CMakeFiles/mlsc_support.dir/check.cc.o.d"
  "CMakeFiles/mlsc_support.dir/dynamic_bitset.cc.o"
  "CMakeFiles/mlsc_support.dir/dynamic_bitset.cc.o.d"
  "CMakeFiles/mlsc_support.dir/log.cc.o"
  "CMakeFiles/mlsc_support.dir/log.cc.o.d"
  "CMakeFiles/mlsc_support.dir/stats.cc.o"
  "CMakeFiles/mlsc_support.dir/stats.cc.o.d"
  "CMakeFiles/mlsc_support.dir/string_util.cc.o"
  "CMakeFiles/mlsc_support.dir/string_util.cc.o.d"
  "CMakeFiles/mlsc_support.dir/table.cc.o"
  "CMakeFiles/mlsc_support.dir/table.cc.o.d"
  "CMakeFiles/mlsc_support.dir/units.cc.o"
  "CMakeFiles/mlsc_support.dir/units.cc.o.d"
  "libmlsc_support.a"
  "libmlsc_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlsc_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
