file(REMOVE_RECURSE
  "libmlsc_support.a"
)
