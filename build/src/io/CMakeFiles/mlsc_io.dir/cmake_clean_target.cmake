file(REMOVE_RECURSE
  "libmlsc_io.a"
)
