file(REMOVE_RECURSE
  "CMakeFiles/mlsc_io.dir/disk.cc.o"
  "CMakeFiles/mlsc_io.dir/disk.cc.o.d"
  "CMakeFiles/mlsc_io.dir/network.cc.o"
  "CMakeFiles/mlsc_io.dir/network.cc.o.d"
  "libmlsc_io.a"
  "libmlsc_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlsc_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
