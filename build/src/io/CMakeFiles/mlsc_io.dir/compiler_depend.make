# Empty compiler generated dependencies file for mlsc_io.
# This may be replaced when dependencies are built.
