
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/poly/affine.cc" "src/poly/CMakeFiles/mlsc_poly.dir/affine.cc.o" "gcc" "src/poly/CMakeFiles/mlsc_poly.dir/affine.cc.o.d"
  "/root/repo/src/poly/codegen.cc" "src/poly/CMakeFiles/mlsc_poly.dir/codegen.cc.o" "gcc" "src/poly/CMakeFiles/mlsc_poly.dir/codegen.cc.o.d"
  "/root/repo/src/poly/dependence.cc" "src/poly/CMakeFiles/mlsc_poly.dir/dependence.cc.o" "gcc" "src/poly/CMakeFiles/mlsc_poly.dir/dependence.cc.o.d"
  "/root/repo/src/poly/integer_set.cc" "src/poly/CMakeFiles/mlsc_poly.dir/integer_set.cc.o" "gcc" "src/poly/CMakeFiles/mlsc_poly.dir/integer_set.cc.o.d"
  "/root/repo/src/poly/iteration_space.cc" "src/poly/CMakeFiles/mlsc_poly.dir/iteration_space.cc.o" "gcc" "src/poly/CMakeFiles/mlsc_poly.dir/iteration_space.cc.o.d"
  "/root/repo/src/poly/loop_nest.cc" "src/poly/CMakeFiles/mlsc_poly.dir/loop_nest.cc.o" "gcc" "src/poly/CMakeFiles/mlsc_poly.dir/loop_nest.cc.o.d"
  "/root/repo/src/poly/order.cc" "src/poly/CMakeFiles/mlsc_poly.dir/order.cc.o" "gcc" "src/poly/CMakeFiles/mlsc_poly.dir/order.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/mlsc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
