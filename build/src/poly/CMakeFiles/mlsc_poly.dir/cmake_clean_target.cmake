file(REMOVE_RECURSE
  "libmlsc_poly.a"
)
