# Empty dependencies file for mlsc_poly.
# This may be replaced when dependencies are built.
