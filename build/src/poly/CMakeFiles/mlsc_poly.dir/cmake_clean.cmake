file(REMOVE_RECURSE
  "CMakeFiles/mlsc_poly.dir/affine.cc.o"
  "CMakeFiles/mlsc_poly.dir/affine.cc.o.d"
  "CMakeFiles/mlsc_poly.dir/codegen.cc.o"
  "CMakeFiles/mlsc_poly.dir/codegen.cc.o.d"
  "CMakeFiles/mlsc_poly.dir/dependence.cc.o"
  "CMakeFiles/mlsc_poly.dir/dependence.cc.o.d"
  "CMakeFiles/mlsc_poly.dir/integer_set.cc.o"
  "CMakeFiles/mlsc_poly.dir/integer_set.cc.o.d"
  "CMakeFiles/mlsc_poly.dir/iteration_space.cc.o"
  "CMakeFiles/mlsc_poly.dir/iteration_space.cc.o.d"
  "CMakeFiles/mlsc_poly.dir/loop_nest.cc.o"
  "CMakeFiles/mlsc_poly.dir/loop_nest.cc.o.d"
  "CMakeFiles/mlsc_poly.dir/order.cc.o"
  "CMakeFiles/mlsc_poly.dir/order.cc.o.d"
  "libmlsc_poly.a"
  "libmlsc_poly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlsc_poly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
