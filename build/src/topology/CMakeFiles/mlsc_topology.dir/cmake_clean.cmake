file(REMOVE_RECURSE
  "CMakeFiles/mlsc_topology.dir/hierarchy.cc.o"
  "CMakeFiles/mlsc_topology.dir/hierarchy.cc.o.d"
  "libmlsc_topology.a"
  "libmlsc_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlsc_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
