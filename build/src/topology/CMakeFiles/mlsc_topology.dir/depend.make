# Empty dependencies file for mlsc_topology.
# This may be replaced when dependencies are built.
