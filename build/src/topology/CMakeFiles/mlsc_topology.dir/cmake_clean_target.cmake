file(REMOVE_RECURSE
  "libmlsc_topology.a"
)
