file(REMOVE_RECURSE
  "CMakeFiles/mlsc_sim.dir/engine.cc.o"
  "CMakeFiles/mlsc_sim.dir/engine.cc.o.d"
  "CMakeFiles/mlsc_sim.dir/experiment.cc.o"
  "CMakeFiles/mlsc_sim.dir/experiment.cc.o.d"
  "CMakeFiles/mlsc_sim.dir/machine.cc.o"
  "CMakeFiles/mlsc_sim.dir/machine.cc.o.d"
  "CMakeFiles/mlsc_sim.dir/report.cc.o"
  "CMakeFiles/mlsc_sim.dir/report.cc.o.d"
  "CMakeFiles/mlsc_sim.dir/trace.cc.o"
  "CMakeFiles/mlsc_sim.dir/trace.cc.o.d"
  "libmlsc_sim.a"
  "libmlsc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlsc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
