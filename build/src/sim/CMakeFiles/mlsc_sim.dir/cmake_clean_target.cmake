file(REMOVE_RECURSE
  "libmlsc_sim.a"
)
