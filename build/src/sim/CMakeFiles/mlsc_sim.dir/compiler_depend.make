# Empty compiler generated dependencies file for mlsc_sim.
# This may be replaced when dependencies are built.
