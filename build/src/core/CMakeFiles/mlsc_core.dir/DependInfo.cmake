
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/baselines.cc" "src/core/CMakeFiles/mlsc_core.dir/baselines.cc.o" "gcc" "src/core/CMakeFiles/mlsc_core.dir/baselines.cc.o.d"
  "/root/repo/src/core/client_codegen.cc" "src/core/CMakeFiles/mlsc_core.dir/client_codegen.cc.o" "gcc" "src/core/CMakeFiles/mlsc_core.dir/client_codegen.cc.o.d"
  "/root/repo/src/core/clustering.cc" "src/core/CMakeFiles/mlsc_core.dir/clustering.cc.o" "gcc" "src/core/CMakeFiles/mlsc_core.dir/clustering.cc.o.d"
  "/root/repo/src/core/data_space.cc" "src/core/CMakeFiles/mlsc_core.dir/data_space.cc.o" "gcc" "src/core/CMakeFiles/mlsc_core.dir/data_space.cc.o.d"
  "/root/repo/src/core/dependences.cc" "src/core/CMakeFiles/mlsc_core.dir/dependences.cc.o" "gcc" "src/core/CMakeFiles/mlsc_core.dir/dependences.cc.o.d"
  "/root/repo/src/core/graph.cc" "src/core/CMakeFiles/mlsc_core.dir/graph.cc.o" "gcc" "src/core/CMakeFiles/mlsc_core.dir/graph.cc.o.d"
  "/root/repo/src/core/iteration_chunk.cc" "src/core/CMakeFiles/mlsc_core.dir/iteration_chunk.cc.o" "gcc" "src/core/CMakeFiles/mlsc_core.dir/iteration_chunk.cc.o.d"
  "/root/repo/src/core/load_balance.cc" "src/core/CMakeFiles/mlsc_core.dir/load_balance.cc.o" "gcc" "src/core/CMakeFiles/mlsc_core.dir/load_balance.cc.o.d"
  "/root/repo/src/core/mapper.cc" "src/core/CMakeFiles/mlsc_core.dir/mapper.cc.o" "gcc" "src/core/CMakeFiles/mlsc_core.dir/mapper.cc.o.d"
  "/root/repo/src/core/mapping.cc" "src/core/CMakeFiles/mlsc_core.dir/mapping.cc.o" "gcc" "src/core/CMakeFiles/mlsc_core.dir/mapping.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/core/CMakeFiles/mlsc_core.dir/pipeline.cc.o" "gcc" "src/core/CMakeFiles/mlsc_core.dir/pipeline.cc.o.d"
  "/root/repo/src/core/scheduler.cc" "src/core/CMakeFiles/mlsc_core.dir/scheduler.cc.o" "gcc" "src/core/CMakeFiles/mlsc_core.dir/scheduler.cc.o.d"
  "/root/repo/src/core/tag.cc" "src/core/CMakeFiles/mlsc_core.dir/tag.cc.o" "gcc" "src/core/CMakeFiles/mlsc_core.dir/tag.cc.o.d"
  "/root/repo/src/core/tagging.cc" "src/core/CMakeFiles/mlsc_core.dir/tagging.cc.o" "gcc" "src/core/CMakeFiles/mlsc_core.dir/tagging.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/mlsc_support.dir/DependInfo.cmake"
  "/root/repo/build/src/poly/CMakeFiles/mlsc_poly.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/mlsc_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/mlsc_cache.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
