# Empty dependencies file for mlsc_core.
# This may be replaced when dependencies are built.
