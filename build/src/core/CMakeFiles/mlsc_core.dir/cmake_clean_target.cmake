file(REMOVE_RECURSE
  "libmlsc_core.a"
)
