file(REMOVE_RECURSE
  "CMakeFiles/mlsc_core.dir/baselines.cc.o"
  "CMakeFiles/mlsc_core.dir/baselines.cc.o.d"
  "CMakeFiles/mlsc_core.dir/client_codegen.cc.o"
  "CMakeFiles/mlsc_core.dir/client_codegen.cc.o.d"
  "CMakeFiles/mlsc_core.dir/clustering.cc.o"
  "CMakeFiles/mlsc_core.dir/clustering.cc.o.d"
  "CMakeFiles/mlsc_core.dir/data_space.cc.o"
  "CMakeFiles/mlsc_core.dir/data_space.cc.o.d"
  "CMakeFiles/mlsc_core.dir/dependences.cc.o"
  "CMakeFiles/mlsc_core.dir/dependences.cc.o.d"
  "CMakeFiles/mlsc_core.dir/graph.cc.o"
  "CMakeFiles/mlsc_core.dir/graph.cc.o.d"
  "CMakeFiles/mlsc_core.dir/iteration_chunk.cc.o"
  "CMakeFiles/mlsc_core.dir/iteration_chunk.cc.o.d"
  "CMakeFiles/mlsc_core.dir/load_balance.cc.o"
  "CMakeFiles/mlsc_core.dir/load_balance.cc.o.d"
  "CMakeFiles/mlsc_core.dir/mapper.cc.o"
  "CMakeFiles/mlsc_core.dir/mapper.cc.o.d"
  "CMakeFiles/mlsc_core.dir/mapping.cc.o"
  "CMakeFiles/mlsc_core.dir/mapping.cc.o.d"
  "CMakeFiles/mlsc_core.dir/pipeline.cc.o"
  "CMakeFiles/mlsc_core.dir/pipeline.cc.o.d"
  "CMakeFiles/mlsc_core.dir/scheduler.cc.o"
  "CMakeFiles/mlsc_core.dir/scheduler.cc.o.d"
  "CMakeFiles/mlsc_core.dir/tag.cc.o"
  "CMakeFiles/mlsc_core.dir/tag.cc.o.d"
  "CMakeFiles/mlsc_core.dir/tagging.cc.o"
  "CMakeFiles/mlsc_core.dir/tagging.cc.o.d"
  "libmlsc_core.a"
  "libmlsc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlsc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
