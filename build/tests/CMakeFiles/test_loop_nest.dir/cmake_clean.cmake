file(REMOVE_RECURSE
  "CMakeFiles/test_loop_nest.dir/test_loop_nest.cc.o"
  "CMakeFiles/test_loop_nest.dir/test_loop_nest.cc.o.d"
  "test_loop_nest"
  "test_loop_nest.pdb"
  "test_loop_nest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_loop_nest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
