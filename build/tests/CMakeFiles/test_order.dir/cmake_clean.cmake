file(REMOVE_RECURSE
  "CMakeFiles/test_order.dir/test_order.cc.o"
  "CMakeFiles/test_order.dir/test_order.cc.o.d"
  "test_order"
  "test_order.pdb"
  "test_order[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
