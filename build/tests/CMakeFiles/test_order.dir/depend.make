# Empty dependencies file for test_order.
# This may be replaced when dependencies are built.
