file(REMOVE_RECURSE
  "CMakeFiles/test_tagging.dir/test_tagging.cc.o"
  "CMakeFiles/test_tagging.dir/test_tagging.cc.o.d"
  "test_tagging"
  "test_tagging.pdb"
  "test_tagging[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tagging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
