# Empty dependencies file for test_tagging.
# This may be replaced when dependencies are built.
