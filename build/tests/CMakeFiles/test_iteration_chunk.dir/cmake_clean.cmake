file(REMOVE_RECURSE
  "CMakeFiles/test_iteration_chunk.dir/test_iteration_chunk.cc.o"
  "CMakeFiles/test_iteration_chunk.dir/test_iteration_chunk.cc.o.d"
  "test_iteration_chunk"
  "test_iteration_chunk.pdb"
  "test_iteration_chunk[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_iteration_chunk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
