# Empty dependencies file for test_iteration_chunk.
# This may be replaced when dependencies are built.
