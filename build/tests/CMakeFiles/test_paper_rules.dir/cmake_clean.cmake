file(REMOVE_RECURSE
  "CMakeFiles/test_paper_rules.dir/test_paper_rules.cc.o"
  "CMakeFiles/test_paper_rules.dir/test_paper_rules.cc.o.d"
  "test_paper_rules"
  "test_paper_rules.pdb"
  "test_paper_rules[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paper_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
