# Empty dependencies file for test_paper_rules.
# This may be replaced when dependencies are built.
