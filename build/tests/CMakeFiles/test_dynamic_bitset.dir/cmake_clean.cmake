file(REMOVE_RECURSE
  "CMakeFiles/test_dynamic_bitset.dir/test_dynamic_bitset.cc.o"
  "CMakeFiles/test_dynamic_bitset.dir/test_dynamic_bitset.cc.o.d"
  "test_dynamic_bitset"
  "test_dynamic_bitset.pdb"
  "test_dynamic_bitset[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dynamic_bitset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
