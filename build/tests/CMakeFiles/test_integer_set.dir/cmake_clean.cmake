file(REMOVE_RECURSE
  "CMakeFiles/test_integer_set.dir/test_integer_set.cc.o"
  "CMakeFiles/test_integer_set.dir/test_integer_set.cc.o.d"
  "test_integer_set"
  "test_integer_set.pdb"
  "test_integer_set[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integer_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
