file(REMOVE_RECURSE
  "CMakeFiles/test_dependences_core.dir/test_dependences_core.cc.o"
  "CMakeFiles/test_dependences_core.dir/test_dependences_core.cc.o.d"
  "test_dependences_core"
  "test_dependences_core.pdb"
  "test_dependences_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dependences_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
