# Empty dependencies file for test_dependences_core.
# This may be replaced when dependencies are built.
