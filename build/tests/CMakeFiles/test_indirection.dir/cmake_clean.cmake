file(REMOVE_RECURSE
  "CMakeFiles/test_indirection.dir/test_indirection.cc.o"
  "CMakeFiles/test_indirection.dir/test_indirection.cc.o.d"
  "test_indirection"
  "test_indirection.pdb"
  "test_indirection[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_indirection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
