# Empty dependencies file for test_indirection.
# This may be replaced when dependencies are built.
