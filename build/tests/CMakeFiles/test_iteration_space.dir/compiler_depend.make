# Empty compiler generated dependencies file for test_iteration_space.
# This may be replaced when dependencies are built.
