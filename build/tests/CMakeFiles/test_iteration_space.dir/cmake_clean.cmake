file(REMOVE_RECURSE
  "CMakeFiles/test_iteration_space.dir/test_iteration_space.cc.o"
  "CMakeFiles/test_iteration_space.dir/test_iteration_space.cc.o.d"
  "test_iteration_space"
  "test_iteration_space.pdb"
  "test_iteration_space[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_iteration_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
