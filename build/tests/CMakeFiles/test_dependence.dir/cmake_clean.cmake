file(REMOVE_RECURSE
  "CMakeFiles/test_dependence.dir/test_dependence.cc.o"
  "CMakeFiles/test_dependence.dir/test_dependence.cc.o.d"
  "test_dependence"
  "test_dependence.pdb"
  "test_dependence[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dependence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
