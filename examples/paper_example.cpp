// The paper's worked example, end to end (§4.4, Figures 6-9 and 17):
// the 8-iteration-chunk loop over a 12-chunk disk-resident array, the
// Fig. 7 hierarchy (4 clients, 2 I/O nodes, 1 storage node), the tag
// table and similarity graph of Fig. 8, the hierarchical clustering of
// Fig. 9, the Fig. 17 schedule, and the per-client loops the compiler
// would emit.
//
// Run: ./build/examples/paper_example
#include <iostream>

#include "core/client_codegen.h"
#include "core/graph.h"
#include "core/pipeline.h"
#include "core/tagging.h"
#include "support/table.h"
#include "topology/hierarchy.h"

int main() {
  using namespace mlsc;

  // Figure 6's code fragment, d = 8 elements of 64 B per data chunk.
  // A[x] with x = i % d always lands in data chunk π0, so it is modelled
  // as the constant reference A[0] — the chunk-level footprint is
  // identical.
  constexpr std::int64_t d = 8;
  poly::Program program;
  program.name = "fig6";
  const auto a = program.add_array({"A", {12 * d}, 64});
  poly::LoopNest nest;
  nest.name = "fig6";
  nest.space = poly::IterationSpace({{0, 8 * d - 1}});
  nest.refs = {
      {a, poly::AccessMap::identity(1, {0}), /*is_write=*/true},  // A[i]
      {a, poly::AccessMap::from_matrix({{0}}, {0}), false},       // A[x]
      {a, poly::AccessMap::identity(1, {4 * d}), false},  // A[i+4d]
      {a, poly::AccessMap::identity(1, {2 * d}), false},  // A[i+2d]
  };
  program.add_nest(std::move(nest));
  program.validate();

  // Figure 7's storage cache hierarchy.
  auto tree = topology::make_layered_hierarchy(4, 2, 1, 4 * 64 * d,
                                               4 * 64 * d, 4 * 64 * d);
  std::cout << "Figure 7 hierarchy:\n" << tree.to_string() << "\n";

  // Figure 8: iteration chunks and tags.
  const core::DataSpace space(program, 64 * d);
  const std::vector<poly::NestId> nests{0};
  const auto tagging = core::compute_iteration_chunks(program, space, nests);
  Table tags({"chunk", "iterations", "tag"});
  for (std::size_t i = 0; i < tagging.chunks.size(); ++i) {
    const auto& chunk = tagging.chunks[i];
    tags.add_row({"γ" + std::to_string(i + 1),
                  "i = " + std::to_string(chunk.first_rank()) + " .. " +
                      std::to_string(chunk.first_rank() + chunk.iterations -
                                     1),
                  chunk.tag.to_string(space.num_chunks())});
  }
  std::cout << "Figure 8 tags:\n";
  tags.print(std::cout);

  const core::ChunkGraph graph(tagging.chunks);
  std::cout << "\nFigure 8 similarity graph (graphviz):\n"
            << graph.to_dot(tagging.chunks, space.num_chunks());

  // Figures 9/17: map and schedule.
  core::PipelineOptions options;
  options.schedule = true;
  core::MappingPipeline pipeline(tree, options);
  const auto mapping = pipeline.run_all(program, space);

  std::cout << "\nFigure 9/17 assignment and schedule:\n";
  for (std::size_t c = 0; c < mapping.num_clients(); ++c) {
    std::cout << "  Compute Node " << c << ": ";
    for (std::size_t k = 0; k < mapping.client_work[c].size(); ++k) {
      const auto& item = mapping.client_work[c][k];
      if (k != 0) std::cout << ", ";
      std::cout << "γ" << (item.ranges.front().begin / d + 1);
    }
    std::cout << "\n";
  }

  std::cout << "\nGenerated per-client code (client 0):\n"
            << core::emit_client_source(program, mapping, 0);
  return 0;
}
