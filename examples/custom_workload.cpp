// Bringing your own application: write the loop-nest IR for an
// out-of-core code, validate it, map it, and inspect the result — the
// adoption path for the library's public API.
//
// The example models an out-of-core k-nearest-neighbour scoring pass:
// a query matrix streams once while a disk-resident feature catalog is
// re-read for every query block (a broadcast array, the paper's Fig. 2b
// scenario).
//
// Run: ./build/examples/custom_workload
#include <iostream>

#include "core/client_codegen.h"
#include "poly/codegen.h"
#include "sim/experiment.h"
#include "support/string_util.h"
#include "support/table.h"

int main() {
  using namespace mlsc;

  // 1. Declare the disk-resident arrays (coarse elements = I/O records).
  poly::Program program;
  program.name = "knn_score";
  const auto queries =
      program.add_array({"queries", {256, 512}, 24 * kKiB});  // 3 GiB
  const auto catalog = program.add_array({"catalog", {512}, 96 * kKiB});
  const auto scores = program.add_array({"scores", {256, 512}, 4 * kKiB});

  // 2. Write the nest: for each (query block, catalog block) pair, read
  //    both and write the score block.
  poly::LoopNest nest;
  nest.name = "score";
  nest.space = poly::IterationSpace::from_extents({256, 512});
  nest.refs = {
      {queries, poly::AccessMap::identity(2, {0, 0}), false},
      {catalog, poly::AccessMap::from_matrix({{0, 1}}, {0}), false},
      {scores, poly::AccessMap::identity(2, {0, 0}), /*is_write=*/true},
  };
  nest.compute_ns_per_iteration = 120 * kMicrosecond;
  program.add_nest(std::move(nest));
  program.validate();

  std::cout << "source nest:\n"
            << poly::emit_nest_source(program, program.nest(0)) << "\n";

  // 3. Wrap it as a workload and run the three schemes on the paper's
  //    default platform.
  workloads::Workload workload;
  workload.name = program.name;
  workload.description = "out-of-core kNN scoring (custom)";
  workload.program = program;

  const auto machine = sim::MachineConfig::paper_default();
  Table table({"scheme", "L1 miss %", "disk reqs", "I/O latency",
               "exec time"});
  for (const auto& scheme :
       {sim::SchemeSpec::original(), sim::SchemeSpec::inter(),
        sim::SchemeSpec::inter_scheduled()}) {
    const auto r = sim::run_experiment(workload, scheme, machine);
    table.add_row({r.scheme, format_double(r.l1_miss_rate * 100, 1),
                   std::to_string(r.engine.disk_requests),
                   format_time(r.io_latency), format_time(r.exec_time)});
  }
  table.print(std::cout);

  // 4. Inspect what one client would actually execute.
  const auto tree = machine.build_tree();
  const core::DataSpace space(program, machine.chunk_size_bytes);
  core::MappingPipeline pipeline(tree);
  const auto mapping = pipeline.run_all(program, space);
  const auto source = core::emit_client_source(program, mapping, 0);
  std::cout << "\nclient 0 executes (first 20 lines):\n";
  std::size_t lines = 0;
  for (const auto& line : split(source, '\n')) {
    if (lines++ == 20) break;
    std::cout << line << "\n";
  }
  return 0;
}
