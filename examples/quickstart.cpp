// Quickstart: map one I/O-intensive application onto the paper's default
// platform with all three schemes and print what happens at each cache
// level.
//
// Build:  cmake -B build -G Ninja && cmake --build build
// Run:    ./build/examples/quickstart [workload-name]
#include <cstdio>
#include <iostream>

#include "sim/experiment.h"
#include "support/string_util.h"
#include "support/table.h"
#include "workloads/registry.h"

int main(int argc, char** argv) {
  using namespace mlsc;

  const std::string name = argc > 1 ? argv[1] : "hf";
  const auto workload = workloads::make_workload(name);
  const auto machine = sim::MachineConfig::paper_default();

  std::cout << "workload: " << workload.name << " — "
            << workload.description << "\n"
            << "data set: " << format_bytes(workload.simulated_data_bytes())
            << " simulated (" << format_bytes(workload.paper_data_bytes)
            << " at paper scale)\n"
            << "machine:  " << machine.to_string() << "\n\n";

  const sim::SchemeSpec schemes[] = {
      sim::SchemeSpec::original(),
      sim::SchemeSpec::intra(),
      sim::SchemeSpec::inter(),
      sim::SchemeSpec::inter_scheduled(),
  };

  Table table({"scheme", "L1 miss %", "L2 miss %", "L3 miss %",
               "disk reqs", "I/O latency", "exec time"});
  for (const auto& scheme : schemes) {
    const auto r = sim::run_experiment(workload, scheme, machine);
    table.add_row({r.scheme, format_double(r.l1_miss_rate * 100, 1),
                   format_double(r.l2_miss_rate * 100, 1),
                   format_double(r.l3_miss_rate * 100, 1),
                   std::to_string(r.engine.disk_requests),
                   format_time(r.io_latency), format_time(r.exec_time)});
  }
  table.print(std::cout);
  return 0;
}
