// Mapping onto a Blue Gene/P-flavoured I/O stack (paper §1/§3): compute
// nodes partitioned onto I/O forwarding nodes at a high ratio, which are
// served by a small set of storage nodes.  The example builds the
// hierarchy by hand (heterogeneous cache capacities per layer), maps one
// application with all schemes, and reports where each scheme's accesses
// were served.
//
// Run: ./build/examples/bluegene_mapping [workload]
#include <iostream>

#include "sim/experiment.h"
#include "support/string_util.h"
#include "support/table.h"
#include "workloads/registry.h"

int main(int argc, char** argv) {
  using namespace mlsc;
  const std::string name = argc > 1 ? argv[1] : "wupwise";
  const auto workload = workloads::make_workload(name);

  // A BG/P-like ratio: 64 compute nodes per 8 I/O nodes (1:8), 2 storage
  // nodes; small compute-node caches, larger I/O and storage caches.
  sim::MachineConfig machine;
  machine.clients = 64;
  machine.io_nodes = 8;
  machine.storage_nodes = 2;
  machine.client_cache_bytes = 16 * kMiB;
  machine.io_cache_bytes = 128 * kMiB;
  machine.storage_cache_bytes = 256 * kMiB;

  const auto tree = machine.build_tree();
  std::cout << "Blue Gene/P-flavoured hierarchy (" << machine.clients
            << " compute : " << machine.io_nodes << " I/O : "
            << machine.storage_nodes << " storage):\n";
  // Print just the top of the tree: the storage and I/O layers.
  std::cout << "  root: " << tree.node(tree.root()).name << ", levels: "
            << tree.num_levels() << ", clients per I/O node: "
            << machine.clients / machine.io_nodes << "\n\n";

  Table table({"scheme", "L1 miss %", "L2 miss %", "L3 miss %",
               "disk reqs", "I/O latency", "exec time"});
  for (const auto& scheme :
       {sim::SchemeSpec::original(), sim::SchemeSpec::intra(),
        sim::SchemeSpec::inter(), sim::SchemeSpec::inter_scheduled()}) {
    const auto r = sim::run_experiment(workload, scheme, machine);
    table.add_row({r.scheme, format_double(r.l1_miss_rate * 100, 1),
                   format_double(r.l2_miss_rate * 100, 1),
                   format_double(r.l3_miss_rate * 100, 1),
                   std::to_string(r.engine.disk_requests),
                   format_time(r.io_latency), format_time(r.exec_time)});
  }
  table.print(std::cout);
  std::cout << "\nThe mapping algorithm consumed only the tree shape — the "
               "same code drives the Table 1 cluster and this deeper, "
               "skewed hierarchy.\n";
  return 0;
}
